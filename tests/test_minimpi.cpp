// Integration tests for the minimpi layer on Nexus.
#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/mpi.hpp"
#include "nexus/runtime.hpp"

namespace {

using namespace nexus;
using minimpi::Comm;
using minimpi::ReduceOp;
using minimpi::Status;
using minimpi::World;
using util::Bytes;

RuntimeOptions mpi_opts(std::size_t n, bool two_partitions = false) {
  RuntimeOptions opts;
  opts.topology = two_partitions
                      ? simnet::Topology::two_partitions(n / 2, n - n / 2)
                      : simnet::Topology::single_partition(n);
  opts.modules = {"local", "mpl", "tcp"};
  return opts;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

TEST(MiniMpi, SendRecvBasic) {
  Runtime rt(mpi_opts(2));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    if (comm.rank() == 0) {
      comm.send(bytes_of("ping"), 1, 42);
      Status st;
      Bytes reply = comm.recv(1, 43, &st);
      EXPECT_EQ(reply, bytes_of("pong"));
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.tag, 43);
      EXPECT_EQ(st.size, 4u);
    } else {
      Bytes msg = comm.recv(0, 42);
      EXPECT_EQ(msg, bytes_of("ping"));
      comm.send(bytes_of("pong"), 0, 43);
    }
  });
}

TEST(MiniMpi, TagAndSourceMatching) {
  Runtime rt(mpi_opts(2));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    if (comm.rank() == 0) {
      comm.send(bytes_of("first"), 1, 1);
      comm.send(bytes_of("second"), 1, 2);
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(comm.recv(0, 2), bytes_of("second"));
      EXPECT_EQ(comm.recv(0, 1), bytes_of("first"));
    }
  });
}

TEST(MiniMpi, WildcardsMatchAnything) {
  Runtime rt(mpi_opts(2));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    if (comm.rank() == 0) {
      comm.send(bytes_of("x"), 1, 7);
    } else {
      Status st;
      comm.recv(minimpi::kAnySource, minimpi::kAnyTag, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
    }
  });
}

TEST(MiniMpi, UnexpectedMessagesQueueInOrder) {
  Runtime rt(mpi_opts(2));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    if (comm.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        util::PackBuffer pb;
        pb.put_i32(i);
        comm.send(pb.bytes(), 1, 9);
      }
    } else {
      ctx.compute(50 * simnet::kMs);  // let them all arrive unexpected
      for (int i = 0; i < 5; ++i) {
        Bytes raw = comm.recv(0, 9);
        util::UnpackBuffer ub(raw);
        EXPECT_EQ(ub.get_i32(), i);  // FIFO per (src, tag)
      }
    }
  });
}

TEST(MiniMpi, SsendCompletesOnlyAfterMatch) {
  Runtime rt(mpi_opts(2));
  Time ssend_done = -1, recv_posted = -1;
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    if (comm.rank() == 0) {
      comm.ssend(bytes_of("sync"), 1, 5);
      ssend_done = ctx.now();
    } else {
      ctx.compute(200 * simnet::kMs);  // delay the matching receive
      recv_posted = ctx.now();
      comm.recv(0, 5);
    }
  });
  // The synchronous send cannot complete before the receiver posted.
  EXPECT_GE(ssend_done, recv_posted);
  EXPECT_GE(ssend_done, 200 * simnet::kMs);
}

TEST(MiniMpi, IsendIrecvWait) {
  Runtime rt(mpi_opts(2));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    if (comm.rank() == 0) {
      auto req = comm.isend(bytes_of("async"), 1, 3);
      EXPECT_TRUE(comm.test(req));
      comm.wait(req);
    } else {
      auto req = comm.irecv(0, 3);
      Status st;
      Bytes data = comm.wait(req, &st);
      EXPECT_EQ(data, bytes_of("async"));
      EXPECT_FALSE(req.valid());  // consumed
      EXPECT_THROW(comm.wait(req), util::UsageError);
    }
  });
}

TEST(MiniMpi, SendRecvCrossPartitionUsesTcp) {
  Runtime rt(mpi_opts(2, /*two_partitions=*/true));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    if (comm.rank() == 0) {
      comm.send(bytes_of("far"), 1, 1);
    } else {
      comm.recv(0, 1);
      EXPECT_GE(ctx.method_counters("tcp").recvs, 1u);
      EXPECT_EQ(ctx.method_counters("mpl").recvs, 0u);
    }
  });
}

TEST(MiniMpi, SendDoublesRoundtrip) {
  Runtime rt(mpi_opts(2));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    const std::vector<double> v{1.5, -2.25, 1e100, 0.0};
    if (comm.rank() == 0) {
      comm.send_doubles(v, 1, 8);
    } else {
      EXPECT_EQ(comm.recv_doubles(0, 8), v);
    }
  });
}

TEST(MiniMpi, OutOfRangeRankThrows) {
  Runtime rt(mpi_opts(2));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    if (mpi.rank() == 0) {
      EXPECT_THROW(mpi.comm().send({}, 5, 0), util::UsageError);
      EXPECT_THROW(mpi.comm().send({}, -1, 0), util::UsageError);
    }
  });
}

class MiniMpiCollectives : public ::testing::TestWithParam<int> {};

TEST_P(MiniMpiCollectives, Barrier) {
  const int n = GetParam();
  Runtime rt(mpi_opts(static_cast<std::size_t>(n)));
  std::vector<Time> after(static_cast<std::size_t>(n));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    // Stagger arrival times; the barrier must hold everyone until the last.
    ctx.compute(static_cast<Time>(ctx.id()) * 10 * simnet::kMs);
    mpi.comm().barrier();
    after[ctx.id()] = ctx.now();
  });
  const Time latest_arrival = static_cast<Time>(n - 1) * 10 * simnet::kMs;
  for (Time t : after) EXPECT_GE(t, latest_arrival);
}

TEST_P(MiniMpiCollectives, BcastFromEveryRoot) {
  const int n = GetParam();
  Runtime rt(mpi_opts(static_cast<std::size_t>(n)));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    for (int root = 0; root < n; ++root) {
      Bytes data;
      if (comm.rank() == root) data = bytes_of("from-" + std::to_string(root));
      comm.bcast(data, root);
      EXPECT_EQ(data, bytes_of("from-" + std::to_string(root)));
    }
  });
}

TEST_P(MiniMpiCollectives, ReduceAndAllreduce) {
  const int n = GetParam();
  Runtime rt(mpi_opts(static_cast<std::size_t>(n)));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    const double r = comm.rank();
    std::vector<double> contrib{r, -r, 1.0};

    auto sum = comm.reduce(contrib, ReduceOp::Sum, 0);
    const double expect_sum = n * (n - 1) / 2.0;
    if (comm.rank() == 0) {
      ASSERT_EQ(sum.size(), 3u);
      EXPECT_DOUBLE_EQ(sum[0], expect_sum);
      EXPECT_DOUBLE_EQ(sum[1], -expect_sum);
      EXPECT_DOUBLE_EQ(sum[2], n);
    } else {
      EXPECT_TRUE(sum.empty());
    }

    auto mx = comm.allreduce(contrib, ReduceOp::Max);
    EXPECT_DOUBLE_EQ(mx[0], n - 1);
    auto mn = comm.allreduce(contrib, ReduceOp::Min);
    EXPECT_DOUBLE_EQ(mn[1], -(n - 1.0));
  });
}

TEST_P(MiniMpiCollectives, GatherScatterRoundtrip) {
  const int n = GetParam();
  Runtime rt(mpi_opts(static_cast<std::size_t>(n)));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    Bytes mine = bytes_of("r" + std::to_string(comm.rank()));
    auto gathered = comm.gather(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(i)],
                  bytes_of("r" + std::to_string(i)));
      }
    }
    // Scatter back what was gathered.
    Bytes got = comm.scatter(gathered, 0);
    EXPECT_EQ(got, mine);
  });
}

TEST_P(MiniMpiCollectives, AllgatherAndAlltoall) {
  const int n = GetParam();
  Runtime rt(mpi_opts(static_cast<std::size_t>(n)));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    auto all = comm.allgather(bytes_of("g" + std::to_string(comm.rank())));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)],
                bytes_of("g" + std::to_string(i)));
    }

    std::vector<Bytes> chunks;
    for (int i = 0; i < n; ++i) {
      chunks.push_back(
          bytes_of(std::to_string(comm.rank()) + "->" + std::to_string(i)));
    }
    auto received = comm.alltoall(chunks);
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(received[static_cast<std::size_t>(i)],
                bytes_of(std::to_string(i) + "->" +
                         std::to_string(comm.rank())));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, MiniMpiCollectives,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(MiniMpiComm, SplitByParity) {
  Runtime rt(mpi_opts(6));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // The sub-communicator must be fully functional.
    auto sums = sub.allreduce(std::vector<double>{1.0}, ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(sums[0], 3.0);
    // Messages on sub must not leak to world-tagged receives.
    sub.barrier();
    EXPECT_EQ(mpi.unexpected_count(), 0u);
  });
}

TEST(MiniMpiComm, SplitModelsCoupledApplication) {
  // 16 + 8 split of a 24-rank world over two partitions -- the climate
  // configuration of §4.
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(16, 8);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    const int color = comm.rank() < 16 ? 0 : 1;
    Comm model = comm.split(color, comm.rank());
    EXPECT_EQ(model.size(), color == 0 ? 16 : 8);
    model.barrier();
    // Leaders exchange across partitions (this is the TCP path).
    if (model.rank() == 0) {
      const int peer_world = color == 0 ? 16 : 0;
      Bytes flux = comm.sendrecv(bytes_of("flux"), peer_world, 77, peer_world,
                                 77);
      EXPECT_EQ(flux, bytes_of("flux"));
      EXPECT_GE(ctx.method_counters("tcp").sends, 1u);
    }
  });
}

TEST(MiniMpiComm, DupIsIndependent) {
  Runtime rt(mpi_opts(4));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    Comm copy = comm.dup();
    EXPECT_EQ(copy.size(), comm.size());
    EXPECT_EQ(copy.rank(), comm.rank());
    copy.barrier();
    comm.barrier();
    EXPECT_EQ(mpi.unexpected_count(), 0u);
  });
}

}  // namespace
