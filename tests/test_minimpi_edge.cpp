// Edge cases and stress for the minimpi layer.
#include <gtest/gtest.h>

#include "minimpi/mpi.hpp"
#include "nexus/runtime.hpp"

namespace {

using namespace nexus;
using minimpi::Comm;
using minimpi::ReduceOp;
using minimpi::World;
using util::Bytes;

RuntimeOptions mpi_opts(std::size_t n) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(n);
  opts.modules = {"local", "mpl", "tcp"};
  return opts;
}

TEST(MiniMpiEdge, MismatchedReduceSizesThrow) {
  Runtime rt(mpi_opts(2));
  EXPECT_THROW(rt.run([&](Context& ctx) {
                 World mpi(ctx);
                 std::vector<double> contrib(
                     mpi.rank() == 0 ? 3u : 4u, 1.0);  // inconsistent
                 mpi.comm().reduce(contrib, ReduceOp::Sum, 0);
               }),
               util::UsageError);
}

TEST(MiniMpiEdge, ScatterChunkCountValidated) {
  Runtime rt(mpi_opts(2));
  EXPECT_THROW(rt.run([&](Context& ctx) {
                 World mpi(ctx);
                 std::vector<Bytes> chunks(1);  // needs 2
                 mpi.comm().scatter(chunks, 0);
               }),
               util::UsageError);
}

TEST(MiniMpiEdge, AlltoallChunkCountValidated) {
  Runtime rt(mpi_opts(2));
  EXPECT_THROW(rt.run([&](Context& ctx) {
                 World mpi(ctx);
                 std::vector<Bytes> chunks(3);  // needs 2
                 mpi.comm().alltoall(chunks);
               }),
               util::UsageError);
}

TEST(MiniMpiEdge, SplitRejectsNegativeColor) {
  Runtime rt(mpi_opts(2));
  EXPECT_THROW(rt.run([&](Context& ctx) {
                 World mpi(ctx);
                 mpi.comm().split(-1, 0);
               }),
               util::UsageError);
}

TEST(MiniMpiEdge, SplitOfSplitWorks) {
  Runtime rt(mpi_opts(8));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& world = mpi.comm();
    Comm half = world.split(world.rank() / 4, world.rank());     // 2 x 4
    Comm quarter = half.split(half.rank() / 2, half.rank());     // 4 x 2
    EXPECT_EQ(half.size(), 4);
    EXPECT_EQ(quarter.size(), 2);
    auto sums = quarter.allreduce(std::vector<double>{1.0}, ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(sums[0], 2.0);
    // No stray messages between the levels.
    quarter.barrier();
    half.barrier();
    world.barrier();
    EXPECT_EQ(mpi.unexpected_count(), 0u);
  });
}

TEST(MiniMpiEdge, SplitKeysReorderRanks) {
  Runtime rt(mpi_opts(4));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& world = mpi.comm();
    // Reverse the order with descending keys.
    Comm rev = world.split(0, world.size() - world.rank());
    EXPECT_EQ(rev.rank(), world.size() - 1 - world.rank());
    EXPECT_EQ(rev.context_of(0),
              static_cast<ContextId>(world.size() - 1));
  });
}

TEST(MiniMpiEdge, WildcardAndSpecificRecvsCoexist) {
  Runtime rt(mpi_opts(3));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    if (comm.rank() == 0) {
      // Post a specific recv for rank 2 first, then a wildcard; rank 1's
      // message must bypass the specific one and match the wildcard.
      auto specific = comm.irecv(2, 5);
      auto wild = comm.irecv(minimpi::kAnySource, minimpi::kAnyTag);
      minimpi::Status st;
      Bytes w = comm.wait(wild, &st);
      EXPECT_EQ(st.source, 1);
      Bytes s = comm.wait(specific, &st);
      EXPECT_EQ(st.source, 2);
    } else if (comm.rank() == 1) {
      ctx.compute(10 * simnet::kMs);
      comm.send(Bytes{1}, 0, 9);
    } else {
      ctx.compute(30 * simnet::kMs);  // arrives after rank 1's message
      comm.send(Bytes{2}, 0, 5);
    }
  });
}

TEST(MiniMpiEdge, ManySmallMessagesStress) {
  constexpr int kMsgs = 300;
  Runtime rt(mpi_opts(4));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    for (int i = 0; i < kMsgs; ++i) {
      util::PackBuffer pb;
      pb.put_i32(i);
      comm.send(pb.bytes(), next, 3);
    }
    for (int i = 0; i < kMsgs; ++i) {
      Bytes raw = comm.recv(prev, 3);
      util::UnpackBuffer ub(raw);
      EXPECT_EQ(ub.get_i32(), i);  // per-link FIFO survives the flood
    }
    comm.barrier();
    EXPECT_EQ(mpi.unexpected_count(), 0u);
  });
}

TEST(MiniMpiEdge, CollectivesBackToBackDoNotCrossMatch) {
  Runtime rt(mpi_opts(4));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    // Rapid-fire mixed collectives; sequence-derived tags must keep every
    // round separate even though ranks enter at staggered times.
    for (int round = 0; round < 10; ++round) {
      ctx.compute(static_cast<Time>(ctx.id()) * simnet::kMs);
      auto v = comm.allreduce(
          std::vector<double>{static_cast<double>(round)}, ReduceOp::Max);
      EXPECT_DOUBLE_EQ(v[0], round);
      Bytes b;
      if (comm.rank() == round % comm.size()) {
        util::PackBuffer pb;
        pb.put_i32(round);
        b = pb.take();
      }
      comm.bcast(b, round % comm.size());
      util::UnpackBuffer ub(b);
      EXPECT_EQ(ub.get_i32(), round);
    }
  });
}

TEST(MiniMpiEdge, IprobeSeesArrivedMessageWithoutConsuming) {
  Runtime rt(mpi_opts(2));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.iprobe(1, 4).has_value());  // nothing yet
      ctx.compute(20 * simnet::kMs);                // let it arrive
      auto st = comm.iprobe(1, 4);
      ASSERT_TRUE(st.has_value());
      EXPECT_EQ(st->source, 1);
      EXPECT_EQ(st->size, 3u);
      // Probe again: still there (not consumed).
      EXPECT_TRUE(comm.iprobe(1, 4).has_value());
      EXPECT_EQ(comm.recv(1, 4), (Bytes{7, 8, 9}));
      EXPECT_FALSE(comm.iprobe(1, 4).has_value());  // now consumed
    } else {
      comm.send(Bytes{7, 8, 9}, 0, 4);
    }
  });
}

TEST(MiniMpiEdge, BlockingProbeWaitsForArrival) {
  Runtime rt(mpi_opts(2));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    if (comm.rank() == 0) {
      minimpi::Status st = comm.probe(minimpi::kAnySource, minimpi::kAnyTag);
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.tag, 6);
      EXPECT_GE(ctx.now(), 100 * simnet::kMs);  // really waited
      comm.recv(st.source, st.tag);
    } else {
      ctx.compute(100 * simnet::kMs);
      comm.send(Bytes{1}, 0, 6);
    }
  });
}

TEST(MiniMpiEdge, WaitAnyReturnsFirstCompleted) {
  Runtime rt(mpi_opts(3));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    if (comm.rank() == 0) {
      std::vector<Comm::Request> reqs;
      reqs.push_back(comm.irecv(1, 1));  // arrives late
      reqs.push_back(comm.irecv(2, 2));  // arrives early
      const std::size_t first = comm.wait_any(reqs);
      EXPECT_EQ(first, 1u);
      EXPECT_EQ(comm.wait(reqs[1]), Bytes{2});
      EXPECT_EQ(comm.wait(reqs[0]), Bytes{1});
    } else if (comm.rank() == 1) {
      ctx.compute(200 * simnet::kMs);
      comm.send(Bytes{1}, 0, 1);
    } else {
      ctx.compute(10 * simnet::kMs);
      comm.send(Bytes{2}, 0, 2);
    }
  });
}

TEST(MiniMpiEdge, WaitAnyWithNoValidRequestThrows) {
  Runtime rt(mpi_opts(1));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    std::vector<Comm::Request> empty(2);  // default = invalid
    EXPECT_THROW(mpi.comm().wait_any(empty), util::UsageError);
  });
}

TEST(MiniMpiEdge, SsendToSelfCompletesViaLocalLoop) {
  Runtime rt(mpi_opts(1));
  rt.run([&](Context& ctx) {
    World mpi(ctx);
    Comm& comm = mpi.comm();
    auto req = comm.irecv(0, 1);  // post first: ssend needs the match
    comm.ssend(Bytes{42}, 0, 1);
    Bytes b = comm.wait(req);
    EXPECT_EQ(b, Bytes{42});
  });
}

}  // namespace
