// Per-module behaviour tests and the module-extension path: registering a
// custom communication module and using it end to end (the paper's
// loadable-module story).
#include <gtest/gtest.h>

#include "nexus/runtime.hpp"
#include "proto/sim_modules.hpp"

namespace {

using namespace nexus;

RuntimeOptions opts_with(std::vector<std::string> modules,
                         simnet::Topology topo) {
  RuntimeOptions opts;
  opts.topology = std::move(topo);
  opts.modules = std::move(modules);
  return opts;
}

TEST(Modules, ShmApplicabilityFollowsNodeSize) {
  RuntimeOptions opts = opts_with({"local", "shm", "tcp"},
                                  simnet::Topology::single_partition(4));
  opts.db.set("shm.node_size", "2");  // nodes: {0,1} and {2,3}
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    if (ctx.id() != 0) return;
    CommModule* shm = ctx.module("shm");
    ASSERT_NE(shm, nullptr);
    EXPECT_TRUE(shm->applicable(
        ctx.runtime().table_of(1).at(*ctx.runtime().table_of(1).find("shm"))));
    EXPECT_FALSE(shm->applicable(
        ctx.runtime().table_of(2).at(*ctx.runtime().table_of(2).find("shm"))));
  });
}

TEST(Modules, ShmSelectedWithinNode) {
  RuntimeOptions opts = opts_with({"local", "shm", "mpl", "tcp"},
                                  simnet::Topology::single_partition(4));
  opts.db.set("shm.node_size", "2");
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("noop",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           ++done;
                         });
    if (ctx.id() == 1) {
      Startpoint same_node = ctx.world_startpoint(0);
      Startpoint other_node = ctx.world_startpoint(2);
      ctx.rsr(same_node, "noop");
      ctx.rsr(other_node, "noop");
      EXPECT_EQ(same_node.selected_method(), "shm");
      EXPECT_EQ(other_node.selected_method(), "mpl");
    } else if (ctx.id() == 0 || ctx.id() == 2) {
      ctx.wait_count(done, 1);
    }
  });
}

TEST(Modules, MyrinetPreferredOverMplInPartition) {
  Runtime rt(opts_with({"local", "myrinet", "mpl", "tcp"},
                       simnet::Topology::two_partitions(2, 1)));
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("noop",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           ++done;
                         });
    if (ctx.id() == 1) {
      Startpoint in_partition = ctx.world_startpoint(0);
      Startpoint across = ctx.world_startpoint(2);
      ctx.rsr(in_partition, "noop");
      ctx.rsr(across, "noop");
      EXPECT_EQ(in_partition.selected_method(), "myrinet");  // rank 2 < mpl 3
      EXPECT_EQ(across.selected_method(), "tcp");
    } else {
      ctx.wait_count(done, 1);
    }
  });
}

TEST(Modules, Aal5BeatsTcpWhenLoaded) {
  Runtime rt(opts_with({"local", "mpl", "aal5", "tcp"},
                       simnet::Topology::two_partitions(1, 1)));
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("noop",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           ++done;
                         });
    if (ctx.id() == 1) {
      Startpoint sp = ctx.world_startpoint(0);
      ctx.rsr(sp, "noop");
      EXPECT_EQ(sp.selected_method(), "aal5");  // faster metropolitan link
    } else {
      ctx.wait_count(done, 1);
    }
  });
}

TEST(Modules, SecureTamperDetectedOnDelivery) {
  // Corrupt a sealed payload in flight by poking the mailbox directly; the
  // receiving module must reject it.
  RuntimeOptions opts = opts_with({"local", "secure"},
                                  simnet::Topology::single_partition(2));
  Runtime rt(opts);
  EXPECT_THROW(
      rt.run([&](Context& ctx) {
        if (ctx.id() == 0) {
          std::uint64_t done = 0;
          ctx.register_handler("secret", [&](Context&, Endpoint&,
                                             util::UnpackBuffer&) { ++done; });
          ctx.wait_count(done, 1);
          return;
        }
        Startpoint sp = ctx.world_startpoint(0);
        sp.force_method("secure");
        util::PackBuffer pb;
        pb.put_string("attack at dawn");
        ctx.rsr(sp, "secret", pb);
        // Intercept in flight and flip a ciphertext bit.
        auto& box = ctx.runtime().sim()->host(0).box("secure");
        // (Test-only surgery: pull, corrupt, repost.)
        auto stolen = box.poll(simnet::kInfinity / 2);
        ASSERT_TRUE(stolen.has_value());
        // Payload buffers are immutable; tampering means replacing the
        // shared buffer with a corrupted copy.
        util::Bytes tampered = stolen->payload.to_bytes();
        tampered[3] ^= 0x40;
        stolen->payload = std::move(tampered);
        box.post(ctx.now() + simnet::kMs, std::move(*stolen));
      }),
      util::MethodError);
}

TEST(Modules, McastToEmptyGroupThrows) {
  Runtime rt(opts_with({"local", "mcast"},
                       simnet::Topology::single_partition(2)));
  EXPECT_THROW(rt.run([&](Context& ctx) {
                 if (ctx.id() != 0) return;
                 Startpoint sp = proto::multicast_startpoint(ctx, 99);
                 ctx.rsr(sp, "x");
               }),
               util::MethodError);
}

TEST(Modules, McastRequiresModuleLoaded) {
  // A context without the mcast module can neither build a group
  // startpoint nor join a group with a foreign endpoint.
  Runtime rt(opts_with({"local", "tcp"},
                       simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 0) return;
    EXPECT_THROW(proto::multicast_startpoint(ctx, 7), util::MethodError);
  });
}

TEST(Modules, SpeedRanksAreStrictlyOrdered) {
  Runtime rt(opts_with(
      {"local", "shm", "myrinet", "mpl", "aal5", "udp", "tcp", "secure",
       "zrle", "mcast"},
      simnet::Topology::single_partition(1)));
  rt.run([&](Context& ctx) {
    int prev = -1;
    for (const auto& d : ctx.local_table().entries()) {
      const int rank = ctx.module(d.method)->speed_rank();
      EXPECT_GT(rank, prev) << "table not fastest-first at " << d.method;
      prev = rank;
    }
  });
}

TEST(Modules, RegistryRejectsUnknownAndListsNames) {
  ModuleRegistry reg;
  EXPECT_FALSE(reg.has("carrier-pigeon"));
  EXPECT_TRUE(reg.names().empty());
  RuntimeOptions opts = opts_with({"local", "carrier-pigeon"},
                                  simnet::Topology::single_partition(1));
  Runtime rt(opts);
  EXPECT_THROW(rt.run([](Context&) {}), util::MethodError);
}

/// A user-defined module: "pigeon" -- slow, but reaches everywhere.  This
/// exercises the extension path the paper emphasizes: new methods slot in
/// without touching the core.
class PigeonModule final : public proto::SimModuleBase {
 public:
  explicit PigeonModule(Context& ctx)
      : SimModuleBase(ctx, "pigeon",
                      proto::LinkCosts{/*latency=*/50 * simnet::kMs,
                                       /*poll=*/5 * simnet::kUs,
                                       /*send_cpu=*/10 * simnet::kUs,
                                       /*mb_s=*/0.01},
                      /*rank=*/20) {}
  CommDescriptor local_descriptor() const override {
    return CommDescriptor{"pigeon", ctx_->id(), {}};
  }
  bool applicable(const CommDescriptor& remote) const override {
    return remote.method == "pigeon";
  }
};

TEST(Modules, CustomModuleEndToEnd) {
  RuntimeOptions opts = opts_with({"local", "pigeon"},
                                  simnet::Topology::two_partitions(1, 1));
  Runtime rt(opts);
  rt.module_registry().register_factory(
      "pigeon",
      [](Context& ctx) { return std::make_unique<PigeonModule>(ctx); });
  Time delivered = -1;
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("coo",
                             [&](Context& c, Endpoint&, util::UnpackBuffer&) {
                               delivered = c.now();
                               ++done;
                             });
        ctx.wait_count(done, 1);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        ctx.rsr(sp, "coo");
        EXPECT_EQ(sp.selected_method(), "pigeon");
      }});
  EXPECT_GE(delivered, 50 * simnet::kMs);  // the pigeon took its time
}

TEST(Modules, UdpDropCounterExposed) {
  RuntimeOptions opts = opts_with({"local", "udp"},
                                  simnet::Topology::single_partition(2));
  opts.costs.udp_drop_prob = 1.0;  // drop everything
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    Startpoint sp = ctx.world_startpoint(0);
    for (int i = 0; i < 10; ++i) ctx.rsr(sp, "void");
    auto* udp = dynamic_cast<proto::UdpSimModule*>(ctx.module("udp"));
    ASSERT_NE(udp, nullptr);
    EXPECT_EQ(udp->dropped(), 10u);
  });
}

}  // namespace
