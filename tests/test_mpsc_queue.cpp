// MpscQueue: the lock-free multi-producer single-consumer queue behind the
// cross-shard mailbox router and every realtime per-method packet queue.
// The invariants pinned here are the ones the sharded runtime leans on:
// per-producer FIFO order, no loss and no duplication under contention,
// close() semantics (wake the consumer, deliver stragglers, then drain to
// nullopt), and the sleeper-flag handshake that makes pop_wait lossless.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "util/mpsc_queue.hpp"

namespace {

using nexus::util::MpscQueue;

TEST(MpscQueue, StartsEmptyAndPopsNothing) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_FALSE(q.closed());
}

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  EXPECT_FALSE(q.empty());
  for (int i = 0; i < 100; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, MoveOnlyPayloads) {
  MpscQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(41));
  q.push(std::make_unique<int>(42));
  auto a = q.try_pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(**a, 41);
  auto b = q.try_pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(**b, 42);
}

// Four producers push tagged sequences while the consumer spins on
// try_pop: every element must arrive exactly once, and elements of one
// producer must arrive in that producer's push order.
TEST(MpscQueue, ContendedNoLossNoDupPerProducerFifo) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 50000;
  MpscQueue<std::uint64_t> q;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.push(p << 32 | i);  // tag = producer id, payload = sequence
      }
    });
  }
  std::vector<std::uint64_t> next_expected(kProducers, 0);
  std::uint64_t received = 0;
  bool order_ok = true;
  while (received < kProducers * kPerProducer) {
    auto v = q.try_pop();
    if (!v.has_value()) continue;
    const std::uint64_t p = *v >> 32;
    const std::uint64_t seq = *v & 0xffffffffull;
    // Exactly-once + per-producer FIFO in one check: each producer's
    // sequence must be observed strictly in order with no gaps.
    if (seq != next_expected[p]) order_ok = false;
    next_expected[p] = seq + 1;
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(order_ok);
  EXPECT_EQ(received, kProducers * kPerProducer);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
  EXPECT_TRUE(q.empty());
}

// Same contention, but the consumer blocks in pop_wait between items: the
// sleeper-flag Dekker handshake must never lose a wakeup (a lost one shows
// up as this test hanging, which the ctest timeout converts to a failure).
TEST(MpscQueue, BlockingConsumerLosesNoWakeups) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  MpscQueue<std::uint64_t> q;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        q.push(p << 32 | i);
      }
    });
  }
  std::vector<std::uint64_t> next_expected(kProducers, 0);
  std::uint64_t received = 0;
  bool order_ok = true;
  while (received < kProducers * kPerProducer) {
    auto v = q.pop_wait();
    ASSERT_TRUE(v.has_value());  // never closed in this test
    const std::uint64_t p = *v >> 32;
    if ((*v & 0xffffffffull) != next_expected[p]) order_ok = false;
    next_expected[p] = (*v & 0xffffffffull) + 1;
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(order_ok);
  EXPECT_EQ(received, kProducers * kPerProducer);
}

TEST(MpscQueue, CloseWakesBlockedConsumer) {
  MpscQueue<int> q;
  std::atomic<bool> got_nullopt{false};
  std::thread consumer([&] {
    auto v = q.pop_wait();
    if (!v.has_value()) got_nullopt.store(true);
  });
  // Give the consumer a moment to park, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(got_nullopt.load());
  EXPECT_TRUE(q.closed());
}

TEST(MpscQueue, CloseDeliversBufferedItemsFirst) {
  MpscQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  auto a = q.pop_wait();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  auto b = q.pop_wait();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(q.pop_wait().has_value());  // drained: now reports closed
}

TEST(MpscQueue, PushAfterCloseStillDelivered) {
  // The rt fabric may race a send against shutdown_blocking(); the queue
  // contract is that post-close pushes are not lost, they drain first.
  MpscQueue<int> q;
  q.close();
  q.push(7);
  auto v = q.pop_wait();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(q.pop_wait().has_value());
}

TEST(MpscQueue, DestructorReleasesUndrainedItems) {
  // Leak-checked under ASan in CI: dropping a non-empty queue must free
  // every node and payload.
  auto q = std::make_unique<MpscQueue<std::unique_ptr<int>>>();
  for (int i = 0; i < 64; ++i) q->push(std::make_unique<int>(i));
  q.reset();
}

}  // namespace
