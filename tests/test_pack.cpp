// Unit and property tests for the XDR-like pack/unpack buffers.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/pack.hpp"
#include "util/rng.hpp"

namespace {

using nexus::util::Bytes;
using nexus::util::PackBuffer;
using nexus::util::Rng;
using nexus::util::UnpackBuffer;

TEST(Pack, FixedWidthRoundtrip) {
  PackBuffer pb;
  pb.put_u8(0xab);
  pb.put_u16(0x1234);
  pb.put_u32(0xdeadbeef);
  pb.put_u64(0x0123456789abcdefull);
  pb.put_i32(-42);
  pb.put_i64(-1234567890123456789ll);
  pb.put_bool(true);
  pb.put_bool(false);

  UnpackBuffer ub(pb.bytes());
  EXPECT_EQ(ub.get_u8(), 0xab);
  EXPECT_EQ(ub.get_u16(), 0x1234);
  EXPECT_EQ(ub.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(ub.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(ub.get_i32(), -42);
  EXPECT_EQ(ub.get_i64(), -1234567890123456789ll);
  EXPECT_TRUE(ub.get_bool());
  EXPECT_FALSE(ub.get_bool());
  EXPECT_TRUE(ub.empty());
}

TEST(Pack, BigEndianWireFormat) {
  PackBuffer pb;
  pb.put_u32(0x01020304);
  const Bytes& b = pb.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[3], 0x04);
}

TEST(Pack, FloatBitPatterns) {
  PackBuffer pb;
  pb.put_f32(3.14159f);
  pb.put_f64(-2.718281828459045);
  pb.put_f64(std::numeric_limits<double>::infinity());
  pb.put_f64(std::numeric_limits<double>::denorm_min());

  UnpackBuffer ub(pb.bytes());
  EXPECT_EQ(ub.get_f32(), 3.14159f);
  EXPECT_EQ(ub.get_f64(), -2.718281828459045);
  EXPECT_TRUE(std::isinf(ub.get_f64()));
  EXPECT_EQ(ub.get_f64(), std::numeric_limits<double>::denorm_min());
}

TEST(Pack, NanSurvivesRoundtrip) {
  PackBuffer pb;
  pb.put_f64(std::nan(""));
  UnpackBuffer ub(pb.bytes());
  EXPECT_TRUE(std::isnan(ub.get_f64()));
}

TEST(Pack, StringsAndBytes) {
  PackBuffer pb;
  pb.put_string("hello, nexus");
  pb.put_string("");
  pb.put_string(std::string("embedded\0null", 13));
  pb.put_bytes(Bytes{1, 2, 3});

  UnpackBuffer ub(pb.bytes());
  EXPECT_EQ(ub.get_string(), "hello, nexus");
  EXPECT_EQ(ub.get_string(), "");
  EXPECT_EQ(ub.get_string(), std::string("embedded\0null", 13));
  EXPECT_EQ(ub.get_bytes(), (Bytes{1, 2, 3}));
}

TEST(Pack, BytesViewIsZeroCopy) {
  PackBuffer pb;
  pb.put_bytes(Bytes{9, 8, 7, 6});
  UnpackBuffer ub(pb.bytes());
  auto view = ub.get_bytes_view();
  ASSERT_EQ(view.size(), 4u);
  EXPECT_EQ(view.data(), pb.bytes().data() + 4);  // past the length prefix
}

TEST(Pack, F64VectorRoundtrip) {
  std::vector<double> v{0.0, -1.5, 1e300, 1e-300};
  PackBuffer pb;
  pb.put_f64_vector(v);
  UnpackBuffer ub(pb.bytes());
  EXPECT_EQ(ub.get_f64_vector(), v);
}

TEST(Pack, LargeF64VectorRoundtrip) {
  std::vector<double> v(10'000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = (static_cast<double>(i) - 5000.0) * 1.25e-3;
  }
  PackBuffer pb;
  pb.put_f64_vector(v);
  UnpackBuffer ub(pb.bytes());
  EXPECT_EQ(ub.get_f64_vector(), v);
  EXPECT_TRUE(ub.empty());
}

TEST(Pack, U32VectorRoundtrip) {
  std::vector<std::uint32_t> v{0u, 1u, 0xdeadbeefu, 0xffffffffu, 42u};
  PackBuffer pb;
  pb.put_u32_vector(v);
  UnpackBuffer ub(pb.bytes());
  EXPECT_EQ(ub.get_u32_vector(), v);
  EXPECT_TRUE(ub.empty());
}

TEST(Pack, BulkVectorsMatchPerElementWireFormat) {
  // The bulk codecs must be byte-identical to the per-element loops they
  // replaced, or old and new builds could not interoperate.
  std::vector<double> f{3.14159, -0.0, 2.5e-10, 1e308};
  std::vector<std::uint32_t> u{7u, 0u, 0xcafef00du};

  PackBuffer bulk;
  bulk.put_f64_vector(f);
  bulk.put_u32_vector(u);

  PackBuffer loop;
  loop.put_u32(static_cast<std::uint32_t>(f.size()));
  for (double x : f) loop.put_f64(x);
  loop.put_u32(static_cast<std::uint32_t>(u.size()));
  for (std::uint32_t x : u) loop.put_u32(x);

  EXPECT_EQ(bulk.bytes(), loop.bytes());
}

TEST(Pack, F64VectorIntoDecodesAndChecksCount) {
  std::vector<double> v{1.0, 2.0, 3.0};
  PackBuffer pb;
  pb.put_f64_vector(v);

  std::vector<double> out(3);
  UnpackBuffer ub(pb.bytes());
  ub.get_f64_vector_into(out);
  EXPECT_EQ(out, v);

  std::vector<double> wrong(4);
  UnpackBuffer ub2(pb.bytes());
  EXPECT_THROW(ub2.get_f64_vector_into(wrong), nexus::util::UnpackError);
}

TEST(Unpack, TruncationThrows) {
  PackBuffer pb;
  pb.put_u32(7);
  UnpackBuffer ub(pb.bytes());
  EXPECT_EQ(ub.get_u16(), 0u);
  EXPECT_EQ(ub.get_u16(), 7u);
  EXPECT_THROW(ub.get_u8(), nexus::util::UnpackError);
}

TEST(Unpack, BogusLengthPrefixThrows) {
  PackBuffer pb;
  pb.put_u32(1000000);  // claims a megabyte that is not there
  UnpackBuffer ub(pb.bytes());
  EXPECT_THROW(ub.get_string(), nexus::util::UnpackError);
}

TEST(Unpack, RemainingTracksPosition) {
  PackBuffer pb;
  pb.put_u64(1);
  pb.put_u32(2);
  UnpackBuffer ub(pb.bytes());
  EXPECT_EQ(ub.remaining(), 12u);
  ub.get_u64();
  EXPECT_EQ(ub.remaining(), 4u);
  ub.get_u32();
  EXPECT_TRUE(ub.empty());
}

TEST(Pack, Fnv1aStableValues) {
  // Reference values for the standard FNV-1a test vectors.
  EXPECT_EQ(nexus::util::fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(nexus::util::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(nexus::util::fnv1a("ping"), nexus::util::fnv1a("pong"));
}

// Property: random sequences of typed puts always unpack to the same values.
class PackPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackPropertyTest, RandomSequenceRoundtrip) {
  Rng rng(GetParam());
  PackBuffer pb;
  std::vector<std::pair<int, std::uint64_t>> script;
  for (int i = 0; i < 200; ++i) {
    const int op = static_cast<int>(rng.next_below(5));
    const std::uint64_t v = rng.next();
    script.emplace_back(op, v);
    switch (op) {
      case 0: pb.put_u8(static_cast<std::uint8_t>(v)); break;
      case 1: pb.put_u32(static_cast<std::uint32_t>(v)); break;
      case 2: pb.put_u64(v); break;
      case 3: pb.put_f64(static_cast<double>(v) * 1e-3); break;
      case 4: pb.put_string(std::to_string(v)); break;
    }
  }
  UnpackBuffer ub(pb.bytes());
  for (const auto& [op, v] : script) {
    switch (op) {
      case 0: EXPECT_EQ(ub.get_u8(), static_cast<std::uint8_t>(v)); break;
      case 1: EXPECT_EQ(ub.get_u32(), static_cast<std::uint32_t>(v)); break;
      case 2: EXPECT_EQ(ub.get_u64(), v); break;
      case 3: EXPECT_EQ(ub.get_f64(), static_cast<double>(v) * 1e-3); break;
      case 4: EXPECT_EQ(ub.get_string(), std::to_string(v)); break;
    }
  }
  EXPECT_TRUE(ub.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 12345u));

}  // namespace
