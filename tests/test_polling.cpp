// Tests for the unified polling engine: skip_poll, selective polling,
// blocking pollers, adaptive skips, and virtual-time fast-forwarding.
#include <gtest/gtest.h>

#include "nexus/runtime.hpp"

namespace {

using namespace nexus;
using simnet::kUs;

RuntimeOptions base_opts(simnet::Topology topo) {
  RuntimeOptions opts;
  opts.topology = std::move(topo);
  opts.modules = {"local", "mpl", "tcp"};
  return opts;
}

TEST(Polling, SkipPollThrottlesExpensiveMethod) {
  Runtime rt(base_opts(simnet::Topology::single_partition(1)));
  rt.run([&](Context& ctx) {
    ctx.set_skip_poll("tcp", 10);
    EXPECT_EQ(ctx.skip_poll("tcp"), 10u);
    const auto tcp_before = ctx.method_counters("tcp").polls;
    const auto mpl_before = ctx.method_counters("mpl").polls;
    for (int i = 0; i < 1000; ++i) ctx.progress();
    EXPECT_EQ(ctx.method_counters("mpl").polls - mpl_before, 1000u);
    EXPECT_EQ(ctx.method_counters("tcp").polls - tcp_before, 100u);
  });
}

TEST(Polling, IterationCostMatchesCostModel) {
  RuntimeOptions opts = base_opts(simnet::Topology::single_partition(1));
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    const SimCostParams& c = opts.costs;
    const Time expected_full = c.poll_iteration_overhead + c.local_poll_cost +
                               c.mpl_poll_cost + c.tcp_poll_cost;
    EXPECT_EQ(ctx.polling_engine().full_iteration_cost(), expected_full);

    const Time t0 = ctx.now();
    for (int i = 0; i < 100; ++i) ctx.progress();
    EXPECT_EQ(ctx.now() - t0, 100 * expected_full);
  });
}

TEST(Polling, DisablingMethodRemovesItsCost) {
  RuntimeOptions opts = base_opts(simnet::Topology::single_partition(1));
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    ctx.set_poll_enabled("tcp", false);
    EXPECT_FALSE(ctx.poll_enabled("tcp"));
    const SimCostParams& c = opts.costs;
    const Time t0 = ctx.now();
    for (int i = 0; i < 50; ++i) ctx.progress();
    EXPECT_EQ(ctx.now() - t0,
              50 * (c.poll_iteration_overhead + c.local_poll_cost +
                    c.mpl_poll_cost));
  });
}

TEST(Polling, SkipPollAmortizesCost) {
  RuntimeOptions opts = base_opts(simnet::Topology::single_partition(1));
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    ctx.set_skip_poll("tcp", 20);
    const SimCostParams& c = opts.costs;
    const Time t0 = ctx.now();
    for (int i = 0; i < 200; ++i) ctx.progress();
    const Time base = c.poll_iteration_overhead + c.local_poll_cost +
                      c.mpl_poll_cost;
    EXPECT_EQ(ctx.now() - t0, 200 * base + 10 * c.tcp_poll_cost);
  });
}

TEST(Polling, UnknownMethodThrows) {
  Runtime rt(base_opts(simnet::Topology::single_partition(1)));
  rt.run([&](Context& ctx) {
    EXPECT_THROW(ctx.set_skip_poll("nope", 2), util::MethodError);
    EXPECT_THROW(ctx.skip_poll("nope"), util::MethodError);
    EXPECT_THROW(ctx.set_poll_enabled("nope", false), util::MethodError);
  });
}

TEST(Polling, DetectionLatencyGrowsWithSkip) {
  // Cross-partition zero-byte RSR: the receiver's detection of the TCP
  // message is delayed by its skip_poll schedule.
  auto one_way = [](std::uint64_t skip) {
    RuntimeOptions opts = base_opts(simnet::Topology::two_partitions(1, 1));
    Runtime rt(opts);
    Time delivered = -1;
    rt.run(std::vector<std::function<void(Context&)>>{
        [&](Context& ctx) {
          ctx.set_skip_poll("tcp", skip);
          std::uint64_t done = 0;
          ctx.register_handler("noop",
                               [&](Context& c, Endpoint&,
                                   util::UnpackBuffer&) {
                                 delivered = c.now();
                                 ++done;
                               });
          ctx.wait_count(done, 1);
        },
        [&](Context& ctx) {
          Startpoint sp = ctx.world_startpoint(0);
          ctx.rsr(sp, "noop");
        }});
    return delivered;
  };

  const Time t1 = one_way(1);
  const Time t50 = one_way(50);
  const Time t500 = one_way(500);
  EXPECT_LT(t1, t50);
  EXPECT_LT(t50, t500);
  // skip=1 detection is within a couple of full iterations of the latency.
  RuntimeOptions opts = base_opts(simnet::Topology::two_partitions(1, 1));
  EXPECT_GE(t1, opts.costs.tcp_latency);
  EXPECT_LE(t1, opts.costs.tcp_latency + 2 * simnet::kMs);
}

TEST(Polling, FastForwardMatchesExplicitSpinning) {
  // The analytic fast-forward must land on the same detection time as an
  // explicitly spun poll loop.
  auto run_once = [](bool spin) {
    RuntimeOptions opts = base_opts(simnet::Topology::two_partitions(1, 1));
    Runtime rt(opts);
    Time delivered = -1;
    rt.run(std::vector<std::function<void(Context&)>>{
        [&](Context& ctx) {
          ctx.set_skip_poll("tcp", 7);
          std::uint64_t done = 0;
          ctx.register_handler("noop",
                               [&](Context& c, Endpoint&,
                                   util::UnpackBuffer&) {
                                 delivered = c.now();
                                 ++done;
                               });
          if (spin) {
            while (done < 1) ctx.progress();  // no fast-forward path
          } else {
            ctx.wait_count(done, 1);  // fast-forward path
          }
        },
        [&](Context& ctx) {
          Startpoint sp = ctx.world_startpoint(0);
          ctx.rsr(sp, "noop");
        }});
    return delivered;
  };

  // The two paths agree up to one poll-loop iteration of phase slack
  // (blocking + backfill cannot recover a partial iteration).
  RuntimeOptions opts = base_opts(simnet::Topology::two_partitions(1, 1));
  const Time one_iter = opts.costs.poll_iteration_overhead +
                        opts.costs.local_poll_cost + opts.costs.mpl_poll_cost +
                        opts.costs.tcp_poll_cost;
  const Time spin = run_once(true);
  const Time ff = run_once(false);
  EXPECT_NEAR(static_cast<double>(spin), static_cast<double>(ff),
              static_cast<double>(one_iter));
}

TEST(Polling, BlockingPollerCutsIterationCost) {
  RuntimeOptions opts = base_opts(simnet::Topology::single_partition(1));
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    const Time full = ctx.polling_engine().full_iteration_cost();
    ctx.set_blocking_poller("tcp", true);
    const Time with_blocking = ctx.polling_engine().full_iteration_cost();
    EXPECT_EQ(full - with_blocking,
              opts.costs.tcp_poll_cost - opts.costs.blocking_check_cost);
    // mpl does not support blocking service.
    EXPECT_THROW(ctx.set_blocking_poller("mpl", true), util::MethodError);
  });
}

TEST(Polling, BlockingPollerStillDeliversTcp) {
  RuntimeOptions opts = base_opts(simnet::Topology::two_partitions(1, 1));
  Runtime rt(opts);
  std::uint64_t got = 0;
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        ctx.set_blocking_poller("tcp", true);
        ctx.register_handler("noop",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++got;
                             });
        ctx.wait_count(got, 1);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        ctx.rsr(sp, "noop");
      }});
  EXPECT_EQ(got, 1u);
}

TEST(Polling, AdaptiveSkipEscalatesWhenIdleAndResetsOnHit) {
  Runtime rt(base_opts(simnet::Topology::two_partitions(1, 1)));
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        ctx.set_adaptive_poll("tcp", true, /*miss_threshold=*/4,
                              /*max_skip=*/64);
        // Idle polling: the tcp skip should escalate toward the cap.
        for (int i = 0; i < 2000; ++i) ctx.progress();
        EXPECT_EQ(ctx.skip_poll("tcp"), 64u);
        // Now receive one tcp message: skip resets to 1.
        std::uint64_t done = 0;
        ctx.register_handler("noop",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++done;
                             });
        ctx.wait_count(done, 1);
        EXPECT_EQ(ctx.skip_poll("tcp"), 1u);
      },
      [&](Context& ctx) {
        ctx.compute(100 * simnet::kMs);  // let the receiver idle first
        Startpoint sp = ctx.world_startpoint(0);
        ctx.rsr(sp, "noop");
      }});
}

TEST(Polling, ComputeWithPollingInterleaves) {
  Runtime rt(base_opts(simnet::Topology::single_partition(1)));
  rt.run([&](Context& ctx) {
    const auto polls_before = ctx.method_counters("mpl").polls;
    const Time t0 = ctx.now();
    ctx.compute_with_polling(10 * simnet::kMs, 1 * simnet::kMs);
    EXPECT_EQ(ctx.method_counters("mpl").polls - polls_before, 10u);
    EXPECT_GE(ctx.now() - t0, 10 * simnet::kMs);
    EXPECT_THROW(ctx.compute_with_polling(1, 0), util::UsageError);
  });
}

}  // namespace
