// Property-style tests of the polling engine's cost arithmetic: for any
// combination of skip values and enabled flags, N iterations must consume
// exactly the modelled virtual time and poll counters must telescope, and
// the analytic fast-forward must agree with explicit spinning.
#include <gtest/gtest.h>

#include "nexus/runtime.hpp"
#include "util/rng.hpp"

namespace {

using namespace nexus;

struct SkipCase {
  std::uint64_t mpl_skip;
  std::uint64_t tcp_skip;
  bool tcp_enabled;
};

class PollingCostSweep : public ::testing::TestWithParam<SkipCase> {};

TEST_P(PollingCostSweep, IterationCostAndCountersExact) {
  const SkipCase sc = GetParam();
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(1);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    ctx.set_skip_poll("mpl", sc.mpl_skip);
    ctx.set_skip_poll("tcp", sc.tcp_skip);
    ctx.set_poll_enabled("tcp", sc.tcp_enabled);

    constexpr std::uint64_t kIters = 997;  // prime: exercises remainders
    const auto mpl0 = ctx.method_counters("mpl").polls;
    const auto tcp0 = ctx.method_counters("tcp").polls;
    const Time t0 = ctx.now();
    for (std::uint64_t i = 0; i < kIters; ++i) ctx.progress();

    const SimCostParams& c = opts.costs;
    const std::uint64_t mpl_polls = kIters / sc.mpl_skip;
    const std::uint64_t tcp_polls = sc.tcp_enabled ? kIters / sc.tcp_skip : 0;
    const Time expected =
        static_cast<Time>(kIters) *
            (c.poll_iteration_overhead + c.local_poll_cost) +
        static_cast<Time>(mpl_polls) * c.mpl_poll_cost +
        static_cast<Time>(tcp_polls) * c.tcp_poll_cost;

    EXPECT_EQ(ctx.now() - t0, expected);
    EXPECT_EQ(ctx.method_counters("mpl").polls - mpl0, mpl_polls);
    EXPECT_EQ(ctx.method_counters("tcp").polls - tcp0, tcp_polls);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, PollingCostSweep,
    ::testing::Values(SkipCase{1, 1, true}, SkipCase{1, 7, true},
                      SkipCase{3, 7, true}, SkipCase{1, 1000, true},
                      SkipCase{5, 12000, true}, SkipCase{1, 1, false},
                      SkipCase{2, 9999, false}));

class FastForwardEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FastForwardEquivalence, MatchesSpinWithinOneIteration) {
  // One cross-partition message; the receiver either spins explicitly or
  // uses wait()'s analytic fast-forward.  Delivery clocks must agree to
  // within one full poll-loop iteration (phase slack of block+backfill).
  const std::uint64_t skip = GetParam();
  auto run_once = [&](bool spin) {
    RuntimeOptions opts;
    opts.topology = simnet::Topology::two_partitions(1, 1);
    opts.modules = {"local", "mpl", "tcp"};
    Runtime rt(opts);
    Time delivered = -1;
    rt.run(std::vector<std::function<void(Context&)>>{
        [&](Context& ctx) {
          ctx.set_skip_poll("tcp", skip);
          std::uint64_t done = 0;
          ctx.register_handler("noop",
                               [&](Context& c, Endpoint&,
                                   util::UnpackBuffer&) {
                                 delivered = c.now();
                                 ++done;
                               });
          if (spin) {
            while (done < 1) ctx.progress();
          } else {
            ctx.wait_count(done, 1);
          }
        },
        [&](Context& ctx) {
          ctx.compute(3 * simnet::kMs);  // desynchronize the phases
          Startpoint sp = ctx.world_startpoint(0);
          ctx.rsr(sp, "noop");
        }});
    return delivered;
  };

  RuntimeOptions opts;
  const Time one_iter = opts.costs.poll_iteration_overhead +
                        opts.costs.local_poll_cost + opts.costs.mpl_poll_cost +
                        opts.costs.tcp_poll_cost;
  const Time spin = run_once(true);
  const Time ff = run_once(false);
  EXPECT_NEAR(static_cast<double>(spin), static_cast<double>(ff),
              static_cast<double>(one_iter))
      << "skip=" << skip;
}

INSTANTIATE_TEST_SUITE_P(Skips, FastForwardEquivalence,
                         ::testing::Values(1u, 2u, 3u, 5u, 13u, 64u, 255u,
                                           1024u));

TEST(PollingProperty, CountersTelescopeUnderMixedTraffic) {
  // Random mix of sends, computes, and waits: for every method the polls
  // counter must equal iterations/skip exactly at the end, however the
  // iterations were accumulated (live polls, bulk fast-forwards, idle
  // backfills).
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(1, 1);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        ctx.set_skip_poll("tcp", 17);
        std::uint64_t got = 0;
        ctx.register_handler("msg",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++got;
                             });
        util::Rng rng(3);
        std::uint64_t waited = 0;
        while (waited < 40) {
          if (rng.chance(0.5)) {
            ctx.compute(static_cast<Time>(rng.next_below(500)) *
                        simnet::kUs);
          }
          ctx.wait_count(got, ++waited);
        }
        const std::uint64_t iters = ctx.polling_engine().iterations();
        EXPECT_EQ(ctx.method_counters("mpl").polls, iters);
        EXPECT_EQ(ctx.method_counters("local").polls, iters);
        EXPECT_EQ(ctx.method_counters("tcp").polls, iters / 17);
      },
      [&](Context& ctx) {
        util::Rng rng(4);
        Startpoint sp = ctx.world_startpoint(0);
        for (int i = 0; i < 40; ++i) {
          ctx.compute(static_cast<Time>(rng.next_below(2000)) * simnet::kUs);
          ctx.rsr(sp, "msg");
        }
      }});
}

TEST(PollingProperty, DisabledMethodNeverPolled) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(1);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    ctx.set_poll_enabled("tcp", false);
    for (int i = 0; i < 500; ++i) ctx.progress();
    EXPECT_EQ(ctx.method_counters("tcp").polls, 0u);
    // Re-enabling resumes from the shared iteration counter.
    ctx.set_poll_enabled("tcp", true);
    const auto before = ctx.method_counters("tcp").polls;
    for (int i = 0; i < 100; ++i) ctx.progress();
    EXPECT_EQ(ctx.method_counters("tcp").polls - before, 100u);
  });
}

}  // namespace
