// Tests for the thread-safe queue backing the realtime fabric.
#include <gtest/gtest.h>

#include <thread>

#include "util/queues.hpp"

namespace {

using nexus::util::ConcurrentQueue;

TEST(ConcurrentQueue, FifoOrder) {
  ConcurrentQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  EXPECT_EQ(q.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(ConcurrentQueue, MoveOnlyPayloads) {
  ConcurrentQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(7));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

TEST(ConcurrentQueue, PopWaitBlocksUntilPush) {
  ConcurrentQueue<int> q;
  std::optional<int> got;
  std::thread consumer([&] { got = q.pop_wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.push(42);
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
}

TEST(ConcurrentQueue, CloseWakesBlockedConsumer) {
  ConcurrentQueue<int> q;
  std::optional<int> got = 1;  // sentinel: must become nullopt
  std::thread consumer([&] { got = q.pop_wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_FALSE(got.has_value());
  EXPECT_TRUE(q.closed());
}

TEST(ConcurrentQueue, CloseDrainsRemainingItemsFirst) {
  ConcurrentQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop_wait(), 1);
  EXPECT_EQ(q.pop_wait(), 2);
  EXPECT_FALSE(q.pop_wait().has_value());
}

TEST(ConcurrentQueue, ManyProducersOneConsumer) {
  ConcurrentQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) q.push(p * kEach + i);
    });
  }
  std::vector<bool> seen(kProducers * kEach, false);
  int count = 0;
  while (count < kProducers * kEach) {
    if (auto v = q.try_pop()) {
      ASSERT_FALSE(seen[static_cast<std::size_t>(*v)]);
      seen[static_cast<std::size_t>(*v)] = true;
      ++count;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.empty());
}

TEST(ConcurrentQueue, PerProducerOrderPreserved) {
  ConcurrentQueue<std::pair<int, int>> q;
  constexpr int kEach = 300;
  std::thread a([&] {
    for (int i = 0; i < kEach; ++i) q.push({0, i});
  });
  std::thread b([&] {
    for (int i = 0; i < kEach; ++i) q.push({1, i});
  });
  int next[2] = {0, 0};
  int count = 0;
  while (count < 2 * kEach) {
    if (auto v = q.try_pop()) {
      EXPECT_EQ(v->second, next[v->first]) << "producer " << v->first;
      ++next[v->first];
      ++count;
    }
  }
  a.join();
  b.join();
}

}  // namespace
