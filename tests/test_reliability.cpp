// Reliability as a selection criterion: automatic selection must never
// hand RSR traffic to an unreliable method while a reliable one applies.
#include <gtest/gtest.h>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "proto/sim_modules.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;

TEST(Reliability, UdpNotAutoSelectedOverTcp) {
  // udp has a better speed rank than tcp, but is lossy; cross-partition
  // selection must pick tcp.
  Runtime rt(opts_with({"local", "mpl", "udp", "tcp"},
                       simnet::Topology::two_partitions(1, 1)));
  std::uint64_t done = 0;
  rt.run([&](Context& ctx) {
    nexus::testing::register_counter(ctx, "noop", done);
    if (ctx.id() != 1) {
      ctx.wait_count(done, 1);
      // Isolation check: keep draining well past the delivery -- a
      // duplicate (e.g. a retried send that was actually delivered) would
      // land here and fail the exact-count assertion below.
      ctx.compute_with_polling(2 * simnet::kMs, 100 * simnet::kUs);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    ctx.rsr(sp, "noop");
    EXPECT_EQ(sp.selected_method(), "tcp");
  });
  EXPECT_EQ(done, 1u);  // exactly once, no duplicates
}

TEST(Reliability, FallbackToUnreliableWhenNothingElseApplies) {
  // With only udp available across partitions, selection falls back to it
  // and says so in the enquiry log.
  RuntimeOptions opts = opts_with({"local", "mpl", "udp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.costs.udp_drop_prob = 0.0;
  Runtime rt(opts);
  std::uint64_t done = 0;
  rt.run([&](Context& ctx) {
    nexus::testing::register_counter(ctx, "noop", done);
    if (ctx.id() != 1) {
      ctx.wait_count(done, 1);
      ctx.compute_with_polling(2 * simnet::kMs, 100 * simnet::kUs);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    ctx.rsr(sp, "noop");
    EXPECT_EQ(sp.selected_method(), "udp");
    ASSERT_FALSE(ctx.selection_log().empty());
    EXPECT_NE(ctx.selection_log().back().reason.find("unreliable"),
              std::string::npos);
  });
  EXPECT_EQ(done, 1u);  // exactly once, no duplicates
}

TEST(Reliability, ForcedUnreliableMethodIsHonoured) {
  RuntimeOptions opts = opts_with({"local", "mpl", "udp", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.costs.udp_drop_prob = 0.0;
  Runtime rt(opts);
  std::uint64_t done = 0;
  rt.run([&](Context& ctx) {
    nexus::testing::register_counter(ctx, "noop", done);
    if (ctx.id() != 1) {
      ctx.wait_count(done, 1);
      ctx.compute_with_polling(2 * simnet::kMs, 100 * simnet::kUs);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    sp.force_method("udp");  // explicit application opt-in
    ctx.rsr(sp, "noop");
    EXPECT_EQ(sp.selected_method(), "udp");
  });
  EXPECT_EQ(done, 1u);  // exactly once, no duplicates
}

TEST(Reliability, QosAlsoPrefersReliable) {
  Runtime rt(opts_with({"local", "mpl", "udp", "tcp"},
                       simnet::Topology::two_partitions(1, 1)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    QosSelector sel;
    std::string reason;
    auto idx = sel.select(ctx.runtime().table_of(0), ctx, reason);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(ctx.runtime().table_of(0).at(*idx).method, "tcp");
  });
}

TEST(Reliability, RandomSelectorNeverPicksUnreliableWhenAvoidable) {
  Runtime rt(opts_with({"local", "mpl", "udp", "tcp"},
                       simnet::Topology::two_partitions(1, 1)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    RandomSelector sel(123);
    std::string reason;
    for (int i = 0; i < 100; ++i) {
      auto idx = sel.select(ctx.runtime().table_of(0), ctx, reason);
      ASSERT_TRUE(idx.has_value());
      EXPECT_EQ(ctx.runtime().table_of(0).at(*idx).method, "tcp");
    }
  });
}

TEST(Reliability, MulticastStillWorksAsOnlyEntry) {
  // The mcast pseudo-table has a single (unreliable) entry: the fallback
  // path must keep group sends working without explicit forcing.
  RuntimeOptions opts = opts_with({"local", "mcast", "tcp"},
                                  simnet::Topology::single_partition(2));
  // The compute() head start orders the join before the send only when
  // both contexts share one virtual clock: single-shard only.
  opts.threads = 1;
  Runtime rt(opts);
  int hits = 0;
  rt.run([&](Context& ctx) {
    if (ctx.id() == 1) {
      std::uint64_t done = 0;
      Endpoint& ep = ctx.create_endpoint();
      ctx.register_handler("update",
                           [&](Context&, Endpoint&, util::UnpackBuffer&) {
                             ++hits;
                             ++done;
                           });
      nexus::proto::multicast_join(ctx, 3, ep);
      ctx.wait_count(done, 1);
      ctx.compute_with_polling(2 * simnet::kMs, 100 * simnet::kUs);
    } else {
      ctx.compute(50 * simnet::kUs);  // let the member join
      Startpoint group = nexus::proto::multicast_startpoint(ctx, 3);
      ctx.rsr(group, "update");
    }
  });
  EXPECT_EQ(hits, 1);
}

}  // namespace
