// Reliability wrapper (rel+udp) behavior: selection preference and
// wrapper-stack enquiry, exactly-once in-order delivery over lossy
// datagrams (silent drops and detected faults, both fabrics), sliding-
// window backpressure in both policies, max-retries escalation into the
// failover layer, and the oversized-datagram MTU contract of the raw udp
// modules the wrapper builds on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "proto/reliable.hpp"
#include "util/rng.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;
using simnet::kMs;
using simnet::kUs;

constexpr Time kDeadline = 8000 * kMs;

util::PackBuffer seq_payload(std::uint64_t i) {
  util::PackBuffer pb(16);
  pb.put_u64(i);
  return pb;
}

// ---------------------------------------------------------------------------
// Selection: rel+udp is reliable at udp's speed rank, so it must beat tcp,
// and the enquiry layer must render the wrapper stack.

TEST(Reliable, SelectionPrefersWrapperOverTcpAndExplainsStack) {
  RuntimeOptions opts = opts_with({"local", "rel+udp", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.costs.udp_drop_prob = 0.0;
  Runtime rt(opts);

  std::uint64_t got = 0;
  std::string selected;
  std::string explain_text;
  std::string explain_json;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        nexus::testing::register_counter(ctx, "ping", got);
        ctx.wait_count(got, 5);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        for (int i = 0; i < 5; ++i) ctx.rsr(sp, "ping", seq_payload(i));
        selected = sp.selected_method();
        const telemetry::SelectionReport report = ctx.explain_selection(sp);
        explain_text = report.to_text();
        explain_json = report.to_json();
        ASSERT_EQ(report.links.size(), 1u);
        EXPECT_EQ(report.links[0].winner, "rel+udp");
        bool saw_wrapper = false;
        for (const auto& c : report.links[0].candidates) {
          if (c.method == "rel+udp") {
            saw_wrapper = true;
            EXPECT_EQ(c.wraps, "udp");
            EXPECT_EQ(c.status, telemetry::CandidateStatus::Won);
          }
          if (c.method == "tcp") {
            EXPECT_EQ(c.status, telemetry::CandidateStatus::RankedBehind);
          }
        }
        EXPECT_TRUE(saw_wrapper);
      }});

  EXPECT_EQ(got, 5u);
  EXPECT_EQ(selected, "rel+udp");
  EXPECT_NE(explain_text.find("[wraps udp]"), std::string::npos)
      << explain_text;
  EXPECT_NE(explain_json.find("\"wraps\":\"udp\""), std::string::npos)
      << explain_json;

  // The metrics registry carries both layers: the wrapper's RSR-level row
  // and the layered row for the raw frames underneath.
  const auto snap = rt.telemetry().metrics().snapshot();
  const auto* wrapper = snap.find_method(1, "rel+udp");
  const auto* inner = snap.find_method(1, "rel+udp/udp");
  ASSERT_NE(wrapper, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(wrapper->counters.sends, 5u);
  // Inner frames = data sends (plus any retransmits; none on a clean link).
  EXPECT_GE(inner->counters.sends, 5u);
  const std::string text = rt.telemetry().metrics().to_text();
  EXPECT_NE(text.find("rel+udp/udp"), std::string::npos) << text;
  EXPECT_NE(text.find("window_occupancy"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Exactly-once, in-order delivery over a transport that silently loses a
// third of all frames (udp's own drop model: the sender sees Ok).

TEST(Reliable, ExactlyOnceInOrderUnderSilentLoss) {
  constexpr int kMsgs = 60;
  RuntimeOptions opts =
      opts_with({"local", "rel+udp"}, simnet::Topology::single_partition(2));
  opts.costs.udp_drop_prob = 0.35;
  opts.seed = nexus::testing::test_seed();
  // The deadline-drain idiom couples both contexts' virtual clocks, which
  // is only defined single-shard (docs/ARCHITECTURE.md §13).
  opts.threads = 1;
  opts.db.set("rel.rto_initial_us", "3000");
  opts.db.set("rel.rto_min_us", "1000");
  opts.db.set("rel.ack_delay_us", "500");
  Runtime rt(opts);

  std::map<std::uint64_t, int> per_seq;
  std::vector<std::uint64_t> order;
  std::uint64_t total = 0;
  std::atomic<bool> sender_drained{false};

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        ctx.register_handler("seq",
                             [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                               const std::uint64_t s = ub.get_u64();
                               ++per_seq[s];
                               order.push_back(s);
                               ++total;
                             });
        // Stay alive past the last delivery: retransmits of silently lost
        // *acks* need this side to keep answering until the sender's
        // window has drained.
        while (!sender_drained.load(std::memory_order_acquire) &&
               ctx.now() < kDeadline) {
          ctx.compute_with_polling(5 * kMs, 500 * kUs);
        }
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        for (int i = 0; i < kMsgs; ++i) {
          ctx.rsr(sp, "seq", seq_payload(i));
          ctx.compute_with_polling(2 * kMs, 500 * kUs);
        }
        // Keep servicing retransmission timers until the window drains.
        auto* rel = dynamic_cast<proto::ReliableModule*>(ctx.module("rel+udp"));
        ASSERT_NE(rel, nullptr);
        while (rel->in_flight(0) > 0 && ctx.now() < kDeadline) {
          ctx.compute_with_polling(5 * kMs, 1 * kMs);
        }
        EXPECT_EQ(rel->in_flight(0), 0u);
        sender_drained.store(true, std::memory_order_release);
      }});

  ASSERT_EQ(total, static_cast<std::uint64_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_EQ(per_seq[static_cast<std::uint64_t>(i)], 1)
        << "sequence " << i << " not delivered exactly once";
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    ASSERT_LT(order[i - 1], order[i]) << "out-of-order dispatch at " << i;
  }

  // A 35% loss rate must have exercised the retransmission machinery.
  const auto snap = rt.telemetry().metrics().snapshot();
  const auto* wrapper = snap.find_method(1, "rel+udp");
  ASSERT_NE(wrapper, nullptr);
  EXPECT_GT(wrapper->counters.rel_retransmits, 0u);
  EXPECT_EQ(wrapper->counters.sends, static_cast<std::uint64_t>(kMsgs));
  const std::string json = rt.telemetry().metrics().to_json();
  EXPECT_NE(json.find("\"rel_retransmits\""), std::string::npos);
  // The receiver must have acknowledged (standalone frames: reverse
  // traffic is ack-only here).
  const auto* receiver = snap.find_method(0, "rel+udp");
  ASSERT_NE(receiver, nullptr);
  EXPECT_GT(receiver->counters.rel_acks_sent, 0u);
}

// ---------------------------------------------------------------------------
// Block backpressure (default): a tiny window throttles a burst sender
// without ever surfacing a failure, and occupancy never exceeds the credit.

TEST(Reliable, BlockBackpressureCapsWindowOccupancy) {
  constexpr int kMsgs = 40;
  RuntimeOptions opts =
      opts_with({"local", "rel+udp"}, simnet::Topology::single_partition(2));
  opts.costs.udp_drop_prob = 0.0;
  // Block-mode waits ride the shared virtual clock: single-shard only.
  opts.threads = 1;
  opts.db.set("rel.window", "4");
  opts.db.set("rel.ack_every", "4");
  opts.db.set("rel.ack_delay_us", "500");
  Runtime rt(opts);

  std::uint64_t got = 0;
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        nexus::testing::register_counter(ctx, "burst", got);
        ctx.wait_count(got, kMsgs);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        for (int i = 0; i < kMsgs; ++i) {
          ctx.rsr(sp, "burst", seq_payload(i));  // no inter-send pacing
        }
      }});

  EXPECT_EQ(got, static_cast<std::uint64_t>(kMsgs));
  const auto snap = rt.telemetry().metrics().snapshot();
  const auto* wrapper = snap.find_method(1, "rel+udp");
  ASSERT_NE(wrapper, nullptr);
  EXPECT_EQ(wrapper->counters.send_errors, 0u);
  ASSERT_GT(wrapper->window_occupancy.count(), 0u);
  EXPECT_LE(wrapper->window_occupancy.max(), 4u);
}

// ---------------------------------------------------------------------------
// Shed backpressure: a full window surfaces Transient verdicts to the
// failover layer instead of blocking; the caller's retry delivers.

TEST(Reliable, ShedBackpressureSurfacesTransientAndRecovers) {
  constexpr int kMsgs = 12;
  RuntimeOptions opts =
      opts_with({"local", "rel+udp"}, simnet::Topology::single_partition(2));
  opts.costs.udp_drop_prob = 0.0;
  // Retry/ack interleaving rides the shared virtual clock: single-shard.
  opts.threads = 1;
  opts.db.set("rel.window", "2");
  opts.db.set("rel.backpressure", "shed");
  opts.db.set("rel.ack_every", "2");
  opts.db.set("rel.ack_delay_us", "500");
  Runtime rt(opts);

  std::map<std::uint64_t, int> per_seq;
  std::uint64_t total = 0;
  bool sender_gave_up = false;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        ctx.register_handler("shed",
                             [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                               ++per_seq[ub.get_u64()];
                               ++total;
                             });
        while (total < kMsgs && ctx.now() < kDeadline) {
          ctx.compute_with_polling(2 * kMs, 200 * kUs);
        }
        ctx.compute_with_polling(10 * kMs, 1 * kMs);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        for (int i = 0; i < kMsgs; ++i) {
          bool sent = false;
          // A shed verdict can exhaust the failover loop's attempt budget
          // when the burst outruns the window; backing off to let acks
          // arrive cannot duplicate (a shed send was never transmitted).
          for (int attempt = 0; attempt < 6 && !sent; ++attempt) {
            try {
              ctx.rsr(sp, "shed", seq_payload(i));
              sent = true;
            } catch (const util::MethodError&) {
              ctx.compute_with_polling(20 * kMs, 1 * kMs);
            }
          }
          if (!sent) sender_gave_up = true;
        }
      }});

  ASSERT_FALSE(sender_gave_up);
  ASSERT_EQ(total, static_cast<std::uint64_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_EQ(per_seq[static_cast<std::uint64_t>(i)], 1) << "sequence " << i;
  }
  const auto snap = rt.telemetry().metrics().snapshot();
  const auto* wrapper = snap.find_method(1, "rel+udp");
  ASSERT_NE(wrapper, nullptr);
  EXPECT_GT(wrapper->counters.send_errors, 0u)
      << "a 2-credit window under a 12-message burst must have shed";
  ASSERT_GT(wrapper->window_occupancy.count(), 0u);
  EXPECT_LE(wrapper->window_occupancy.max(), 2u);
}

// ---------------------------------------------------------------------------
// Hard failure at the inner layer: a blackholed udp link makes the wrapper
// report Dead, and the health tracker quarantines *the wrapper* (layer-
// correct attribution) and fails over to tcp.

TEST(Reliable, InnerBlackholeFailsOverToTcp) {
  RuntimeOptions opts = opts_with({"local", "rel+udp", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.costs.udp_drop_prob = 0.0;
  opts.faults.blackhole("udp", 0, 500 * kMs);
  Runtime rt(opts);

  std::uint64_t got = 0;
  std::string selected;
  std::uint64_t wrapper_failures = 0;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        nexus::testing::register_counter(ctx, "ping", got);
        ctx.wait_count(got, 3);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        for (int i = 0; i < 3; ++i) ctx.rsr(sp, "ping", seq_payload(i));
        selected = sp.selected_method();
        wrapper_failures = ctx.method_health("rel+udp", 0).failures;
      }});

  EXPECT_EQ(got, 3u);
  EXPECT_EQ(selected, "tcp");
  EXPECT_GE(wrapper_failures, 1u)
      << "health state must attribute the failure to the wrapper method";
}

// ---------------------------------------------------------------------------
// Soft failure escalation: when every frame is (detectably) dropped past
// the retry budget, the wrapper latches Dead for new work -- feeding the
// failover layer -- while the already-accepted packet keeps probing and is
// eventually delivered once the fault clears.  Exactly-once holds across
// the escalation.

TEST(Reliable, RetryExhaustionEscalatesThenDeliversAfterHeal) {
  constexpr int kMsgs = 6;
  RuntimeOptions opts = opts_with({"local", "rel+udp", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.costs.udp_drop_prob = 0.0;
  // Time-windowed fault plans assume one clock across contexts.
  opts.threads = 1;
  opts.faults.drop("udp", 1.0, 0, 150 * kMs);
  opts.db.set("rel.max_retries", "2");
  opts.db.set("rel.rto_initial_us", "2000");
  opts.db.set("rel.rto_max_us", "20000");
  Runtime rt(opts);

  std::map<std::uint64_t, int> per_seq;
  std::uint64_t total = 0;
  std::vector<std::string> methods;
  std::atomic<bool> sender_drained{false};

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        ctx.register_handler("seq",
                             [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                               ++per_seq[ub.get_u64()];
                               ++total;
                             });
        while (!sender_drained.load(std::memory_order_acquire) &&
               ctx.now() < kDeadline) {
          ctx.compute_with_polling(5 * kMs, 500 * kUs);
        }
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        // Message 0 is accepted into the window while the drop storm rages.
        ctx.rsr(sp, "seq", seq_payload(0));
        methods.push_back(sp.selected_method());
        // Let the retry budget burn down so the wrapper latches Dead.
        ctx.compute_with_polling(30 * kMs, 1 * kMs);
        for (int i = 1; i < kMsgs; ++i) {
          ctx.rsr(sp, "seq", seq_payload(i));
          methods.push_back(sp.selected_method());
          ctx.compute_with_polling(5 * kMs, 1 * kMs);
        }
        // Past the fault window: the retained packet must drain.
        auto* rel = dynamic_cast<proto::ReliableModule*>(ctx.module("rel+udp"));
        ASSERT_NE(rel, nullptr);
        while (rel->in_flight(0) > 0 && ctx.now() < kDeadline) {
          ctx.compute_with_polling(10 * kMs, 1 * kMs);
        }
        EXPECT_EQ(rel->in_flight(0), 0u);
        sender_drained.store(true, std::memory_order_release);
      }});

  ASSERT_EQ(total, static_cast<std::uint64_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_EQ(per_seq[static_cast<std::uint64_t>(i)], 1) << "sequence " << i;
  }
  EXPECT_EQ(methods.front(), "rel+udp");
  bool failed_over = false;
  for (const auto& m : methods) {
    if (m == "tcp") failed_over = true;
  }
  EXPECT_TRUE(failed_over)
      << "the Dead latch must have pushed later sends onto tcp";
  const auto snap = rt.telemetry().metrics().snapshot();
  const auto* wrapper = snap.find_method(1, "rel+udp");
  ASSERT_NE(wrapper, nullptr);
  EXPECT_GT(wrapper->counters.rel_retransmits, 2u);
}

// ---------------------------------------------------------------------------
// MTU regression (both fabrics): oversized datagrams fail with a
// deterministic Dead verdict -- no exception -- so health/failover (or the
// wrapper) own the recovery.

TEST(Reliable, OversizedUdpSendFailsDeadSimulated) {
  RuntimeOptions opts =
      opts_with({"local", "udp"}, simnet::Topology::single_partition(2));
  opts.costs.udp_drop_prob = 0.0;
  Runtime rt(opts);

  rt.run(std::vector<std::function<void(Context&)>>{
      [](Context&) {},
      [&](Context& ctx) {
        CommModule* udp = ctx.module("udp");
        ASSERT_NE(udp, nullptr);
        const DescriptorTable& table = ctx.runtime().table_of(0);
        const auto idx = table.find("udp");
        ASSERT_TRUE(idx.has_value());
        auto conn = udp->connect(table.at(*idx));
        Packet big;
        big.src = ctx.id();
        big.dst = 0;
        big.payload = util::Bytes(ctx.costs().udp_mtu + 1, 0x5a);
        SendResult r{};
        ASSERT_NO_THROW(r = udp->send(*conn, std::move(big)));
        EXPECT_EQ(r.status, DeliveryStatus::Dead);
        Packet small;
        small.src = ctx.id();
        small.dst = 0;
        small.payload = util::Bytes(64, 0x5a);
        EXPECT_EQ(udp->send(*conn, std::move(small)).status,
                  DeliveryStatus::Ok);
      }});
}

TEST(Reliable, OversizedUdpSendFailsDeadRealtime) {
  RuntimeOptions opts =
      opts_with({"local", "udp"}, simnet::Topology::single_partition(2));
  opts.fabric = RuntimeOptions::Fabric::Realtime;
  opts.costs.udp_drop_prob = 0.0;
  Runtime rt(opts);

  rt.run(std::vector<std::function<void(Context&)>>{
      [](Context&) {},
      [&](Context& ctx) {
        CommModule* udp = ctx.module("udp");
        ASSERT_NE(udp, nullptr);
        const DescriptorTable& table = ctx.runtime().table_of(0);
        const auto idx = table.find("udp");
        ASSERT_TRUE(idx.has_value());
        auto conn = udp->connect(table.at(*idx));
        Packet big;
        big.src = ctx.id();
        big.dst = 0;
        big.payload = util::Bytes(ctx.costs().udp_mtu + 1, 0x5a);
        SendResult r{};
        ASSERT_NO_THROW(r = udp->send(*conn, std::move(big)));
        EXPECT_EQ(r.status, DeliveryStatus::Dead);
      }});
}

// The wrapper rolls its sequence counter back when the inner transport
// rejects the initial transmit, so the rejection leaves no gap in the
// stream: a following in-budget send is sequence-contiguous.

TEST(Reliable, WrapperRollsBackSequenceOnOversizedSend) {
  RuntimeOptions opts =
      opts_with({"local", "rel+udp"}, simnet::Topology::single_partition(2));
  opts.costs.udp_drop_prob = 0.0;
  Runtime rt(opts);

  rt.run(std::vector<std::function<void(Context&)>>{
      [](Context&) {},  // never polls: packets stay queued, nothing dispatches
      [&](Context& ctx) {
        auto* rel = dynamic_cast<proto::ReliableModule*>(ctx.module("rel+udp"));
        ASSERT_NE(rel, nullptr);
        const DescriptorTable& table = ctx.runtime().table_of(0);
        const auto idx = table.find("rel+udp");
        ASSERT_TRUE(idx.has_value());
        auto conn = rel->connect(table.at(*idx));
        Packet big;
        big.src = ctx.id();
        big.dst = 0;
        big.payload = util::Bytes(ctx.costs().udp_mtu + 1, 0x5a);
        EXPECT_EQ(rel->send(*conn, std::move(big)).status,
                  DeliveryStatus::Dead);
        EXPECT_EQ(rel->in_flight(0), 0u)
            << "a rejected initial transmit must not occupy the window";
        Packet small;
        small.src = ctx.id();
        small.dst = 0;
        small.payload = util::Bytes(64, 0x5a);
        EXPECT_EQ(rel->send(*conn, std::move(small)).status,
                  DeliveryStatus::Ok);
        EXPECT_EQ(rel->in_flight(0), 1u);
      }});
}

// ---------------------------------------------------------------------------
// Realtime fabric: exactly-once in-order delivery with a fault hook
// dropping 40% of udp frames (detected, transient).

TEST(Reliable, RtExactlyOnceInOrderUnderFaultHook) {
  constexpr int kMsgs = 30;
  RuntimeOptions opts =
      opts_with({"local", "rel+udp"}, simnet::Topology::single_partition(2));
  opts.fabric = RuntimeOptions::Fabric::Realtime;
  opts.costs.udp_drop_prob = 0.0;
  opts.db.set("rel.rto_initial_us", "2000");
  opts.db.set("rel.rto_min_us", "1000");
  opts.db.set("rel.ack_delay_us", "500");
  Runtime rt(opts);

  std::mutex rng_mutex;
  util::Rng rng(nexus::testing::test_seed());
  rt.rt()->set_fault_hook([&](std::string_view method, ContextId,
                              ContextId) -> simnet::FaultVerdict {
    simnet::FaultVerdict v;
    if (method == "udp") {
      std::lock_guard<std::mutex> lock(rng_mutex);
      if (rng.chance(0.4)) v.transient = true;
    }
    return v;
  });

  std::map<std::uint64_t, int> per_seq;
  std::vector<std::uint64_t> order;
  std::uint64_t total = 0;
  std::atomic<bool> sender_drained{false};

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        ctx.register_handler("seq",
                             [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                               const std::uint64_t s = ub.get_u64();
                               ++per_seq[s];
                               order.push_back(s);
                               ++total;
                             });
        // Keep polling past the last delivery: dropped acks mean the
        // sender's window can only drain while this side still answers
        // retransmits.
        ctx.wait(
            [&] { return sender_drained.load(std::memory_order_acquire); });
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        for (int i = 0; i < kMsgs; ++i) ctx.rsr(sp, "seq", seq_payload(i));
        auto* rel = dynamic_cast<proto::ReliableModule*>(ctx.module("rel+udp"));
        ASSERT_NE(rel, nullptr);
        ctx.wait([&] { return rel->in_flight(0) == 0; });
        sender_drained.store(true, std::memory_order_release);
      }});

  ASSERT_EQ(total, static_cast<std::uint64_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_EQ(per_seq[static_cast<std::uint64_t>(i)], 1) << "sequence " << i;
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    ASSERT_LT(order[i - 1], order[i]) << "out-of-order dispatch at " << i;
  }
}

}  // namespace
