// Property test for the reliability wrapper: across many seeded random
// fault plans over a *udp-only* method table (no tcp fallback -- the
// wrapper alone owns delivery), every RSR is delivered exactly once and
// dispatched in sequence order.
//
// Plan shape per trial: the inner udp transport gets silent loss (the
// cost-model drop probability, where the sender sees Ok), detected drops
// with rates up to 0.7 (possibly windowed), and extra-delay windows up to
// several RTOs (which induces retransmission-driven duplication and
// reordering for the receiver to suppress).  Blackholes are deliberately
// excluded -- with no alternate method an infinite blackhole would merely
// stall the trial against the deadline, proving nothing -- and so is
// corruption, whose loss-at-receiver semantics are pinned in
// test_fault_injection.cpp (the wrapper treats a corrupt frame as loss and
// repairs it by RTO, which a targeted case in test_reliable.cpp could not
// distinguish from a drop anyway).
//
// The base seed comes from NEXUS_TEST_SEED (the CI chaos job runs ten);
// every trial derives deterministically from it, so any failure reproduces
// by exporting the seed the log names.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <vector>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "proto/reliable.hpp"
#include "util/rng.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;
using simnet::kMs;
using simnet::kUs;

constexpr int kTrials = 200;
constexpr int kMsgs = 24;
constexpr Time kDeadline = 8000 * kMs;  ///< receiver gives up (sim time)

simnet::FaultPlan random_plan(util::Rng& rng) {
  simnet::FaultPlan plan;
  // At most one open-ended drop rule: drop probabilities stack
  // multiplicatively with each other and with the silent-loss model, and
  // several open-ended rules together can push round-trip frame survival
  // below 0.1% -- at which point "the window eventually drains" stops
  // being testable against any finite deadline.  One open-ended rule plus
  // windowed storms keeps the steady-state channel merely terrible.
  if (rng.chance(0.6)) plan.drop("udp", 0.7 * rng.next_double());
  const int n = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < n; ++i) {
    const Time from = rng.uniform(0, 400 * kMs);
    const Time until = from + rng.uniform(50 * kMs, 600 * kMs);
    if (rng.chance(0.5)) {  // windowed drop storm (may reach p ~ 0.7)
      plan.drop("udp", 0.7 * rng.next_double(), from, until);
    } else {  // delay window: stretches frames past the RTO -> spurious
              // retransmits (receiver-side duplicates) and reordering
      plan.delay("udp", rng.uniform(0, 8 * kMs), from, until);
    }
  }
  return plan;
}

void run_trial(std::uint64_t seed) {
  util::Rng rng(seed);

  // udp-only table: automatic selection must pick rel+udp and the wrapper
  // alone is responsible for delivery.
  RuntimeOptions opts =
      opts_with({"local", "rel+udp"}, simnet::Topology::single_partition(2));
  opts.faults = random_plan(rng);
  opts.seed = seed;
  opts.costs.udp_drop_prob = 0.5 * rng.next_double();  // silent loss
  // Aggressive timers keep trials short; a generous retry budget keeps the
  // Dead latch out of play (there is nothing to fail over to here).
  opts.db.set("rel.max_retries", "30");
  opts.db.set("rel.rto_initial_us", "5000");
  opts.db.set("rel.rto_min_us", "1000");
  opts.db.set("rel.rto_max_us", "100000");
  opts.db.set("rel.ack_delay_us", "500");
  Runtime rt(opts);

  std::map<std::uint64_t, int> per_seq;
  std::vector<std::uint64_t> order;
  std::uint64_t total = 0;
  bool sender_gave_up = false;
  std::atomic<bool> sender_drained{false};

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {  // receiver, deadline-guarded (never hangs)
        ctx.register_handler("seq",
                             [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                               const std::uint64_t s = ub.get_u64();
                               ++per_seq[s];
                               order.push_back(s);
                               ++total;
                             });
        // Stay alive until the sender's window drains: lost acks are
        // repaired by retransmits only while this side still answers.
        while (!sender_drained.load(std::memory_order_acquire) &&
               ctx.now() < kDeadline) {
          ctx.compute_with_polling(10 * kMs, 1 * kMs);
        }
      },
      [&](Context& ctx) {  // sender
        Startpoint sp = ctx.world_startpoint(0);
        for (int i = 0; i < kMsgs; ++i) {
          util::PackBuffer pb(16);
          pb.put_u64(static_cast<std::uint64_t>(i));
          // The wrapper accepts sends unless its window is full under a
          // drop storm; backing off to let the RTO machinery drain credit
          // cannot duplicate (a failed send never entered the window).
          bool sent = false;
          for (int attempt = 0; attempt < 6 && !sent; ++attempt) {
            try {
              ctx.rsr(sp, "seq", pb);
              sent = true;
            } catch (const util::MethodError&) {
              ctx.compute_with_polling(100 * kMs, 1 * kMs);
            }
          }
          if (!sent) sender_gave_up = true;
          ctx.compute_with_polling(5 * kMs, 500 * kUs);
        }
        // Stay alive servicing retransmission timers until every accepted
        // packet has been cumulatively acked.
        auto* rel = dynamic_cast<proto::ReliableModule*>(ctx.module("rel+udp"));
        ASSERT_NE(rel, nullptr);
        while (rel->in_flight(0) > 0 && ctx.now() < kDeadline) {
          ctx.compute_with_polling(10 * kMs, 1 * kMs);
        }
        EXPECT_EQ(rel->in_flight(0), 0u) << "seed " << seed;
        sender_drained.store(true, std::memory_order_release);
      }});

  ASSERT_FALSE(sender_gave_up)
      << "seed " << seed << ": sender exhausted its backoff budget";
  ASSERT_EQ(total, static_cast<std::uint64_t>(kMsgs)) << "seed " << seed;
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_EQ(per_seq[static_cast<std::uint64_t>(i)], 1)
        << "seed " << seed << ": sequence " << i
        << " not delivered exactly once";
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    ASSERT_LT(order[i - 1], order[i])
        << "seed " << seed << ": out-of-order dispatch at position " << i;
  }
}

TEST(ReliableProperty, RandomFaultPlansDeliverExactlyOnceInOrder) {
  const std::uint64_t base = nexus::testing::test_seed();
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t state = base ^ (0x9e3779b97f4a7c15ull * (t + 1));
    const std::uint64_t seed = util::splitmix64(state);
    run_trial(seed);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "trial " << t << " (seed " << seed << ") failed";
    }
  }
}

}  // namespace
