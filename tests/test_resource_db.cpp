// Unit tests for the resource database (paper §3.1 configuration sources).
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/resource_db.hpp"

namespace {

using nexus::util::ConfigError;
using nexus::util::ResourceDb;

TEST(ResourceDb, SetGet) {
  ResourceDb db;
  db.set("tcp.skip_poll", "20");
  EXPECT_TRUE(db.contains("tcp.skip_poll"));
  EXPECT_EQ(db.get_int("tcp.skip_poll", 1), 20);
  EXPECT_EQ(db.get_int("absent", 7), 7);
}

TEST(ResourceDb, TrimsKeysAndValues) {
  ResourceDb db;
  db.set("  key  ", "  value  ");
  EXPECT_EQ(db.get_string("key", ""), "value");
}

TEST(ResourceDb, TypedAccessors) {
  ResourceDb db;
  db.set("f", "2.5");
  db.set("b1", "true");
  db.set("b2", "off");
  EXPECT_DOUBLE_EQ(db.get_double("f", 0.0), 2.5);
  EXPECT_TRUE(db.get_bool("b1", false));
  EXPECT_FALSE(db.get_bool("b2", true));
}

TEST(ResourceDb, BadValuesThrow) {
  ResourceDb db;
  db.set("i", "not-a-number");
  db.set("b", "maybe");
  EXPECT_THROW(db.get_int("i", 0), ConfigError);
  EXPECT_THROW(db.get_double("i", 0.0), ConfigError);
  EXPECT_THROW(db.get_bool("b", false), ConfigError);
}

TEST(ResourceDb, ListParsing) {
  ResourceDb db;
  db.set("nexus.modules", "local, mpl ,tcp,,");
  auto mods = db.get_list("nexus.modules");
  ASSERT_EQ(mods.size(), 3u);
  EXPECT_EQ(mods[0], "local");
  EXPECT_EQ(mods[1], "mpl");
  EXPECT_EQ(mods[2], "tcp");
  EXPECT_TRUE(db.get_list("absent").empty());
}

TEST(ResourceDb, ScopedLookupPrefersContextEntry) {
  ResourceDb db;
  db.set("tcp.skip_poll", "10");
  db.set("context.3.tcp.skip_poll", "99");
  EXPECT_EQ(db.get_scoped_int(3, "tcp.skip_poll", 1), 99);
  EXPECT_EQ(db.get_scoped_int(4, "tcp.skip_poll", 1), 10);
  EXPECT_EQ(db.get_scoped_int(4, "absent", 5), 5);
}

TEST(ResourceDb, LoadText) {
  ResourceDb db;
  db.load_text(
      "# comment\n"
      "nexus.modules: local,tcp\n"
      "\n"
      "tcp.skip_poll: 12\n");
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.get_int("tcp.skip_poll", 0), 12);
}

TEST(ResourceDb, LoadTextRejectsMalformedLine) {
  ResourceDb db;
  EXPECT_THROW(db.load_text("this line has no colon\n"), ConfigError);
}

TEST(ResourceDb, LoadArgsConsumesNxPairs) {
  ResourceDb db;
  std::vector<std::string> args{"prog", "-nx", "tcp.skip_poll=5", "positional",
                                "-nx", "a.b=c"};
  db.load_args(args);
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[0], "prog");
  EXPECT_EQ(args[1], "positional");
  EXPECT_EQ(db.get_int("tcp.skip_poll", 0), 5);
  EXPECT_EQ(db.get_string("a.b", ""), "c");
}

TEST(ResourceDb, LoadArgsRejectsMissingEquals) {
  ResourceDb db;
  std::vector<std::string> args{"-nx", "noequals"};
  EXPECT_THROW(db.load_args(args), ConfigError);
}

TEST(ResourceDb, EraseAndEntries) {
  ResourceDb db;
  db.set("a", "1");
  db.set("b", "2");
  EXPECT_TRUE(db.erase("a"));
  EXPECT_FALSE(db.erase("a"));
  auto entries = db.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, "b");
}

}  // namespace
