// Tests for the deterministic PRNG.
#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using nexus::util::Rng;

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(99);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, 0.05);  // coverage of the interval
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    double x = r.uniform(-3.0, 4.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 4.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

}  // namespace
