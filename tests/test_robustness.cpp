// Robustness-plane tests (docs/ARCHITECTURE.md §14): crash-rule semantics,
// unknown-peer RSR verdicts, peer-death detection with the dead-letter
// queue, rebirth redelivery, forwarder drain, and the shard-aware deadlock
// diagnostic.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "simnet/fault.hpp"
#include "simnet/scheduler.hpp"
#include "util/error.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;
using nexus::testing::register_counter;
using nexus::testing::run_mpmd;
using nexus::testing::sim_opts;
using simnet::kMs;
using simnet::kUs;

// ---------------------------------------------------------------------------
// Crash rules are pure functions of (context, partition, time).

TEST(FaultPlanCrash, WindowsAreHalfOpenAndScoped) {
  simnet::FaultPlan plan;
  plan.crash(1, 10 * kUs, 20 * kUs);
  plan.crash_partition(2, 30 * kUs, 40 * kUs);

  EXPECT_TRUE(plan.has_crashes());
  EXPECT_TRUE(plan.empty());  // no *link* rules: fast paths keep their guard

  // Context-scoped rule: half-open [from, until).
  EXPECT_FALSE(plan.crashed(1, 0, 9 * kUs));
  EXPECT_TRUE(plan.crashed(1, 0, 10 * kUs));
  EXPECT_TRUE(plan.crashed(1, 0, 19 * kUs));
  EXPECT_FALSE(plan.crashed(1, 0, 20 * kUs));
  EXPECT_FALSE(plan.crashed(0, 0, 15 * kUs));  // other contexts untouched

  // Partition-scoped rule hits every context of that partition, only them.
  EXPECT_TRUE(plan.crashed(5, 2, 35 * kUs));
  EXPECT_TRUE(plan.crashed(9, 2, 35 * kUs));
  EXPECT_FALSE(plan.crashed(5, 1, 35 * kUs));
}

TEST(FaultPlanCrash, CrashEndAndIncarnationAreDeterministic) {
  simnet::FaultPlan plan;
  plan.crash(3, 10 * kUs, 20 * kUs);
  plan.crash(3, 15 * kUs, 50 * kUs);  // overlapping: latest until wins

  EXPECT_EQ(plan.crash_end(3, 0, 16 * kUs), 50 * kUs);
  // Only windows covering `now` count; a later overlapping window extends
  // the outage when the restart check re-runs at 20us, not before.
  EXPECT_EQ(plan.crash_end(3, 0, 12 * kUs), 20 * kUs);
  // Outside every window, crash_end degenerates to `now`.
  EXPECT_EQ(plan.crash_end(3, 0, 60 * kUs), 60 * kUs);

  EXPECT_EQ(plan.incarnation(3, 0, 0), 1u);
  EXPECT_EQ(plan.incarnation(3, 0, 20 * kUs), 2u);  // first window behind it
  EXPECT_EQ(plan.incarnation(3, 0, 50 * kUs), 3u);
  EXPECT_EQ(plan.incarnation(7, 0, 60 * kUs), 1u);  // unscoped context

  // A permanent death (until = infinity) never counts as "behind".
  simnet::FaultPlan forever;
  forever.crash(1, 5 * kUs);
  EXPECT_TRUE(forever.crashed(1, 0, simnet::kInfinity - 1));
  EXPECT_EQ(forever.incarnation(1, 0, simnet::kInfinity - 1), 1u);
}

// ---------------------------------------------------------------------------
// Satellite: an RSR to an id that names no context (>= world size, below the
// multicast base) fails with a Dead verdict and a send_errors bump -- it
// must not throw and must not poison anything else.

TEST(UnknownPeer, RsrReturnsDeadOnSimulatedFabric) {
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(2));
  Runtime rt(opts);

  run_mpmd(rt, {[&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(42);  // nobody home
                  util::PackBuffer pb;
                  pb.put_u64(1);
                  EXPECT_EQ(ctx.rsr(sp, "ghost", pb), DeliveryStatus::Dead);
                  // The context is otherwise healthy: a real RSR still works.
                  Startpoint ok = ctx.world_startpoint(1);
                  EXPECT_EQ(ctx.rsr(ok, "real"), DeliveryStatus::Ok);
                },
                [&](Context& ctx) {
                  std::uint64_t done = 0;
                  register_counter(ctx, "real", done);
                  ctx.wait_count(done, 1);
                }});

  EXPECT_EQ(rt.telemetry().metrics().context(0).send_errors, 1u);
  EXPECT_EQ(rt.telemetry().metrics().context(1).send_errors, 0u);
}

TEST(UnknownPeer, RsrReturnsDeadOnRealtimeFabric) {
  RuntimeOptions opts;
  opts.fabric = RuntimeOptions::Fabric::Realtime;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);

  std::atomic<bool> checked{false};
  run_mpmd(rt, {[&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(99);
                  EXPECT_EQ(ctx.rsr(sp, "ghost"), DeliveryStatus::Dead);
                  checked.store(true, std::memory_order_release);
                },
                [&](Context&) {}});

  EXPECT_TRUE(checked.load());
  EXPECT_EQ(rt.telemetry().metrics().context(0).send_errors, 1u);
}

// ---------------------------------------------------------------------------
// Satellite: the deadlock diagnostic names the blocked contexts and their
// shard, so a hung 4-thread run points at the stuck shard immediately.

TEST(Deadlock, ErrorNamesBlockedContextsAndShard) {
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(4));
  opts.threads = 4;
  Runtime rt(opts);
  std::uint64_t never = 0;
  try {
    rt.run([&](Context& ctx) {
      if (ctx.id() != 2) return;  // three shards go idle
      register_counter(ctx, "ghost", never);
      ctx.wait_count(never, 1);  // no one ever sends
    });
    FAIL() << "expected simnet::DeadlockError";
  } catch (const simnet::DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shard 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ctx2"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// Tentpole: peer-death detection drains failed RSRs into the bounded
// dead-letter queue; rebirth redelivers the retained letters exactly once.

TEST(PeerDeath, DeadLetterQueueCapsAndRedeliversOnRebirth) {
  RuntimeOptions opts =
      opts_with({"local", "udp"}, simnet::Topology::single_partition(2));
  // udp is hard-down for the first 5 ms: every send fails with a Dead
  // verdict, so with a dead-letter budget configured the RSRs park in the
  // queue instead of throwing.
  opts.faults.blackhole("udp", 0, 5 * kMs);
  opts.costs.udp_drop_prob = 0.0;  // no silent loss after the window
  opts.db.set("robust.retry_budget", "2");
  opts.db.set("robust.deadletter_cap", "4");
  opts.db.set("robust.peer_grace_ms", "0");  // declare death on first strike
  Runtime rt(opts);

  std::map<std::uint64_t, int> delivered;
  std::atomic<bool> done{false};
  std::uint64_t letters_at_peak = 0;
  bool dead_mid_window = false, alive_after = false;

  run_mpmd(
      rt,
      {[&](Context& ctx) {  // sender
         Startpoint sp = ctx.world_startpoint(1);
         // Six RSRs into the outage: all deadletter (Transient verdicts);
         // the cap of 4 evicts the two oldest.
         for (std::uint64_t i = 0; i < 6; ++i) {
           util::PackBuffer pb(16);
           pb.put_u64(i);
           EXPECT_EQ(ctx.rsr(sp, "pay", pb), DeliveryStatus::Transient);
         }
         dead_mid_window = ctx.is_peer_dead(1);
         letters_at_peak = ctx.deadletter_count();
         // Ride out the outage, then send one more: the first success is
         // the rebirth signal and flushes the retained letters.
         while (ctx.now() < 6 * kMs) ctx.compute_with_polling(1 * kMs, 250 * kUs);
         util::PackBuffer pb(16);
         pb.put_u64(6);
         EXPECT_EQ(ctx.rsr(sp, "pay", pb), DeliveryStatus::Ok);
         alive_after = !ctx.is_peer_dead(1);
         EXPECT_EQ(ctx.deadletter_count(), 0u);
         // Keep polling so the receiver's clock can drain everything.
         while (!done.load(std::memory_order_acquire) && ctx.now() < 100 * kMs) {
           ctx.compute_with_polling(1 * kMs, 250 * kUs);
         }
       },
       [&](Context& ctx) {  // receiver
         std::uint64_t got = 0;
         ctx.register_handler("pay",
                              [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                                ++delivered[ub.get_u64()];
                                ++got;
                              });
         while (got < 5 && ctx.now() < 100 * kMs) {
           ctx.compute_with_polling(1 * kMs, 250 * kUs);
         }
         done.store(true, std::memory_order_release);
       }});

  EXPECT_TRUE(dead_mid_window);
  EXPECT_TRUE(alive_after);
  EXPECT_EQ(letters_at_peak, 4u);  // capped

  // The two oldest letters (payloads 0, 1) were evicted by the cap; the
  // retained four plus the reviving RSR arrive exactly once each.
  for (std::uint64_t v = 0; v < 2; ++v) EXPECT_EQ(delivered[v], 0) << v;
  for (std::uint64_t v = 2; v < 7; ++v) EXPECT_EQ(delivered[v], 1) << v;

  const auto& m = rt.telemetry().metrics().context(0);
  EXPECT_EQ(m.peer_deaths, 1u);
  EXPECT_EQ(m.peer_reborns, 1u);
  EXPECT_EQ(m.deadletters, 6u);
  EXPECT_EQ(m.deadletter_drops, 2u);
  EXPECT_EQ(m.deadletter_redeliveries, 4u);

  // The new counters reach every export format.
  const std::string prom = rt.telemetry().metrics().to_prometheus();
  for (const char* name :
       {"nexus_peer_deaths_total", "nexus_peer_reborns_total",
        "nexus_deadletters_total", "nexus_deadletter_drops_total",
        "nexus_deadletter_redeliveries_total", "nexus_ctx_send_errors_total"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << name;
  }
  const std::string json = rt.telemetry().metrics().to_json();
  EXPECT_NE(json.find("\"peer_deaths\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"deadletters\":6"), std::string::npos) << json;
}

// With no dead-letter budget configured (robust.retry_budget = 0, the
// default), exhaustion keeps the pre-robustness contract: MethodError.
TEST(PeerDeath, DefaultBudgetZeroStillThrowsOnExhaustion) {
  RuntimeOptions opts =
      opts_with({"local", "udp"}, simnet::Topology::single_partition(2));
  opts.faults.blackhole("udp", 0, 5 * kMs);
  Runtime rt(opts);

  run_mpmd(rt, {[&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(1);
                  EXPECT_THROW(ctx.rsr(sp, "pay"), util::MethodError);
                  EXPECT_EQ(ctx.deadletter_count(), 0u);
                },
                [&](Context&) {}});
}

// ---------------------------------------------------------------------------
// Tentpole: graceful drain of a forwarding node -- relay duty is handed to
// a sibling, and traffic that still lands on the draining node is re-routed
// through that sibling instead of being sent onward directly.

TEST(Drain, ForwarderHandsRelayDutyToSibling) {
  // Partition 0 = {0, 1} clients; partition 1 = {2, 3, 4} with context 2
  // forwarding.  After context 2 drains toward sibling 3, cross-partition
  // traffic to 4 goes client -> 2 -> 3 -> 4.
  RuntimeOptions opts = sim_opts(simnet::Topology::two_partitions(2, 3));
  opts.forwarders[1] = 2;
  // The phased drain handshake below waits contexts out on the shared
  // virtual clock (docs §13.4): single-shard only.
  opts.threads = 1;
  Runtime rt(opts);
  rt.trace().enable();

  std::atomic<int> phase{0};  // 0: pre-drain, 1: drained, 2: all sent
  std::atomic<int> delivered{0};

  run_mpmd(
      rt,
      {[&](Context& ctx) {  // client
         Startpoint sp = ctx.world_startpoint(4);
         ctx.rsr(sp, "tile");  // batch 1: relayed directly by the forwarder
         while (phase.load(std::memory_order_acquire) < 1 &&
                ctx.now() < 50 * kMs) {
           ctx.compute_with_polling(500 * kUs, 100 * kUs);
         }
         ctx.rsr(sp, "tile");  // batch 2: re-routed via the sibling
         phase.store(2, std::memory_order_release);
       },
       [&](Context&) {},
       [&](Context& ctx) {  // forwarder, drains mid-run
         while (delivered.load(std::memory_order_acquire) < 1 &&
                ctx.now() < 50 * kMs) {
           ctx.progress();
         }
         ctx.drain_forwarding(3);
         EXPECT_TRUE(ctx.draining());
         phase.store(1, std::memory_order_release);
         while (delivered.load(std::memory_order_acquire) < 2 &&
                ctx.now() < 50 * kMs) {
           ctx.progress();
         }
       },
       [&](Context& ctx) {  // sibling: relays on behalf of the drained node
         while (delivered.load(std::memory_order_acquire) < 2 &&
                ctx.now() < 50 * kMs) {
           ctx.progress();
         }
       },
       [&](Context& ctx) {  // destination
         std::uint64_t got = 0;
         ctx.register_handler("tile",
                              [&](Context&, Endpoint&, util::UnpackBuffer&) {
                                ++got;
                                delivered.fetch_add(1,
                                                    std::memory_order_release);
                              });
         while (got < 2 && ctx.now() < 50 * kMs) {
           ctx.compute_with_polling(500 * kUs, 100 * kUs);
         }
         EXPECT_EQ(got, 2u);
       }});

  EXPECT_EQ(delivered.load(), 2);
  // Batch 2 took an extra relay hop: the sibling forwarded traffic that was
  // not addressed to it.
  EXPECT_GE(rt.context(3).method_counters("mpl").recvs, 1u);
  EXPECT_GE(rt.trace().count(simnet::TraceKind::Forward, "mpl"), 2u);
}

// Draining toward a context that does not exist is a configuration error.
TEST(Drain, UnknownSiblingRejected) {
  RuntimeOptions opts = sim_opts(simnet::Topology::two_partitions(2, 2));
  opts.forwarders[1] = 2;
  Runtime rt(opts);

  run_mpmd(rt, {[&](Context&) {}, [&](Context&) {},
                [&](Context& ctx) {
                  EXPECT_THROW(ctx.drain_forwarding(77), util::UsageError);
                },
                [&](Context&) {}});
}

}  // namespace
