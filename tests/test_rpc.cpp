// Mercury-style RPC subsystem tests (docs/ARCHITECTURE.md §15).
//
// Deterministic cases for the call state machine (Ok, DeadlineExceeded,
// Cancelled, PeerDied, Rejected, HandlerError, BulkError), the pulled
// bulk-data plane (flow-controlled chunking, single-allocation reassembly,
// typed protocol errors for bad handles), admission control in both
// policies, and the observability contract (per-call traces, rpc.* counters
// in every export format, the explain_selection rpc row).
//
// Satellite: an RSR naming an unregistered handler is dropped and counted
// (send_errors) instead of faulting -- asserted on both fabrics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "proto/rpc/rpc.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;
using nexus::testing::run_mpmd;
using proto::rpc::BulkHandle;
using proto::rpc::CallContext;
using proto::rpc::CallOptions;
using proto::rpc::CallResult;
using proto::rpc::CallStatus;
using proto::rpc::Client;
using proto::rpc::Server;
using simnet::kMs;
using simnet::kUs;

util::SharedBytes bytes_of(std::size_t n, std::uint8_t fill) {
  return util::SharedBytes(util::Bytes(n, fill));
}

/// Client/server pair over a lossless simulated fabric.  Tests that need
/// fault injection or rpc.* tuning mutate the returned options first.
RuntimeOptions rpc_opts() {
  RuntimeOptions opts =
      opts_with({"local", "tcp"}, simnet::Topology::single_partition(2));
  // Deadline/cancel interleavings ride the shared virtual clock (§13.4);
  // pin threads=1 so the NEXUS_THREADS=4 TSan leg runs the suite unsharded.
  opts.threads = 1;
  return opts;
}

/// The standard server body: construct a Server, register `services`, poll
/// until the client flips `done` (bounded in virtual time).
std::function<void(Context&)> server_fn(
    std::atomic<bool>& done,
    std::function<void(Server&)> services,
    std::function<void(Server&)> after = {}) {
  return [&done, services = std::move(services),
          after = std::move(after)](Context& ctx) {
    Server srv(ctx);
    services(srv);
    while (!done.load(std::memory_order_acquire) && ctx.now() < 2000 * kMs) {
      if (!ctx.progress()) ctx.compute_with_polling(200 * kUs, 50 * kUs);
      srv.service();
    }
    if (after) after(srv);
  };
}

TEST(Rpc, BasicCallReplyRoundTrip) {
  Runtime rt(rpc_opts());
  std::atomic<bool> done{false};
  CallResult res;

  run_mpmd(rt, {[&](Context& ctx) {  // client
                  Client cl(ctx);
                  util::PackBuffer args(8);
                  args.put_u64(21);
                  const auto id = cl.call(1, "double", args);
                  res = cl.wait(id);
                  done.store(true, std::memory_order_release);
                },
                server_fn(done, [](Server& srv) {
                  srv.serve("double", [](CallContext& cc) {
                    auto ub = cc.args();
                    util::PackBuffer pb(8);
                    pb.put_u64(ub.get_u64() * 2);
                    cc.respond(pb);
                  });
                })});

  ASSERT_EQ(res.status, CallStatus::Ok) << res.error;
  util::UnpackBuffer ub(res.payload.span());
  EXPECT_EQ(ub.get_u64(), 42u);
  EXPECT_EQ(rt.telemetry().metrics().context(0).rpc_calls, 1u);
  EXPECT_EQ(rt.telemetry().metrics().context(0).rpc_call_ns.count(), 1u);
}

TEST(Rpc, UnknownServiceCompletesHandlerError) {
  Runtime rt(rpc_opts());
  std::atomic<bool> done{false};
  CallResult res;

  run_mpmd(rt, {[&](Context& ctx) {
                  Client cl(ctx);
                  util::PackBuffer args(4);
                  const auto id = cl.call(1, "nope", args);
                  res = cl.wait(id);
                  done.store(true, std::memory_order_release);
                },
                server_fn(done, [](Server&) {})});  // no services registered

  EXPECT_EQ(res.status, CallStatus::HandlerError);
  EXPECT_NE(res.error.find("no such service"), std::string::npos) << res.error;
}

// Satellite: the peer context exists but runs no rpc Server at all, so the
// request RSR names a handler id the receiver never registered.  The packet
// is dropped and counted (send_errors) instead of faulting, and the
// client's deadline resolves the call.
TEST(Rpc, DeadlineExceededWhenPeerRunsNoServer) {
  Runtime rt(rpc_opts());
  std::atomic<bool> done{false};
  CallResult res;

  run_mpmd(rt, {[&](Context& ctx) {
                  Client cl(ctx);
                  util::PackBuffer args(4);
                  CallOptions opts;
                  opts.timeout = 5 * kMs;
                  const auto id = cl.call(1, "echo", args, opts);
                  res = cl.wait(id);
                  done.store(true, std::memory_order_release);
                },
                [&](Context& ctx) {  // no Server: "rpc.req" is unregistered
                  while (!done.load(std::memory_order_acquire) &&
                         ctx.now() < 2000 * kMs) {
                    if (!ctx.progress()) {
                      ctx.compute_with_polling(200 * kUs, 50 * kUs);
                    }
                  }
                }});

  EXPECT_EQ(res.status, CallStatus::DeadlineExceeded);
  EXPECT_EQ(rt.telemetry().metrics().context(0).rpc_deadline_exceeded, 1u);
  // The unregistered-handler drop was counted at the receiver.
  EXPECT_EQ(rt.telemetry().metrics().context(1).send_errors, 1u);
}

// Satellite, realtime fabric: same unregistered-handler contract on real
// threads -- dropped and counted, no fault.  The sender fences with a
// registered "ping" on the same ordered link so the receiver can tell when
// the ghost RSR has transited.
TEST(Rpc, UnknownHandlerDroppedAndCountedRealtime) {
  RuntimeOptions opts;
  opts.fabric = RuntimeOptions::Fabric::Realtime;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);
  std::uint64_t drops_seen = 0;

  run_mpmd(rt, {[&](Context& ctx) {  // receiver
                  std::uint64_t pings = 0;
                  nexus::testing::register_counter(ctx, "ping", pings);
                  ctx.wait_count(pings, 1);
                  // Delivery runs on this context's thread, so its own
                  // counter is safe to read here.
                  drops_seen = ctx.runtime()
                                   .telemetry()
                                   .metrics()
                                   .context(ctx.id())
                                   .send_errors;
                },
                [&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(0);
                  ctx.rsr(sp, "ghost.handler.nobody.registered");
                  ctx.rsr(sp, "ping");
                }});

  EXPECT_EQ(drops_seen, 1u);
}

TEST(Rpc, CancelCompletesLocallyAndHandlerObservesIt) {
  Runtime rt(rpc_opts());
  std::atomic<bool> done{false};
  std::atomic<bool> entered{false};
  std::atomic<bool> handler_saw_cancel{false};
  CallResult res;

  run_mpmd(
      rt,
      {[&](Context& ctx) {  // client
         Client cl(ctx);
         util::PackBuffer args(4);
         CallOptions opts;
         opts.timeout = 500 * kMs;
         const auto id = cl.call(1, "spin", args, opts);
         while (!entered.load(std::memory_order_acquire) &&
                ctx.now() < 1000 * kMs) {
           if (!ctx.progress()) ctx.compute_with_polling(200 * kUs, 50 * kUs);
         }
         ASSERT_TRUE(entered.load(std::memory_order_acquire));
         cl.cancel(id);
         EXPECT_TRUE(cl.done(id));
         res = cl.take(id);
         // Keep polling until the server's late Cancelled reply arrives and
         // is dropped as late (never delivered twice).
         const auto& cm = rt.telemetry().metrics().context(0);
         while (cm.rpc_late_replies == 0 && ctx.now() < 1000 * kMs) {
           if (!ctx.progress()) ctx.compute_with_polling(200 * kUs, 50 * kUs);
         }
         done.store(true, std::memory_order_release);
       },
       server_fn(done, [&](Server& srv) {
         srv.serve("spin", [&](CallContext& cc) {
           entered.store(true, std::memory_order_release);
           // Long-running handler: poll and check for cancellation, the
           // documented cooperative idiom.
           while (!cc.cancelled() && cc.context().now() < 1000 * kMs) {
             cc.context().compute_with_polling(200 * kUs, 50 * kUs);
           }
           handler_saw_cancel.store(cc.cancelled(), std::memory_order_release);
         });
       })});

  EXPECT_EQ(res.status, CallStatus::Cancelled);
  EXPECT_TRUE(handler_saw_cancel.load());
  EXPECT_EQ(rt.telemetry().metrics().context(0).rpc_cancelled, 1u);
  EXPECT_EQ(rt.telemetry().metrics().context(0).rpc_late_replies, 1u);
}

TEST(Rpc, AdmissionShedRejectsConcurrentOverload) {
  RuntimeOptions opts = rpc_opts();
  opts.db.set("rpc.max_inflight", "1");
  opts.db.set("rpc.admission", "shed");
  Runtime rt(opts);
  std::atomic<bool> done{false};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  CallResult r1, r2;
  Server::Stats stats;

  run_mpmd(
      rt,
      {[&](Context& ctx) {  // client
         Client cl(ctx);
         util::PackBuffer args(4);
         const auto id1 = cl.call(1, "spin", args);
         while (!entered.load(std::memory_order_acquire) &&
                ctx.now() < 1000 * kMs) {
           if (!ctx.progress()) ctx.compute_with_polling(200 * kUs, 50 * kUs);
         }
         // The slot is held: this call must be shed with a typed Rejected.
         const auto id2 = cl.call(1, "spin", args);
         r2 = cl.wait(id2);
         release.store(true, std::memory_order_release);
         r1 = cl.wait(id1);
         done.store(true, std::memory_order_release);
       },
       server_fn(
           done,
           [&](Server& srv) {
             srv.serve("spin", [&](CallContext& cc) {
               entered.store(true, std::memory_order_release);
               while (!release.load(std::memory_order_acquire) &&
                      cc.context().now() < 1000 * kMs) {
                 cc.context().compute_with_polling(200 * kUs, 50 * kUs);
               }
               util::PackBuffer pb(4);
               pb.put_u8(1);
               cc.respond(pb);
             });
           },
           [&](Server& srv) { stats = srv.stats(); })});

  EXPECT_EQ(r2.status, CallStatus::Rejected);
  EXPECT_NE(r2.error.find("shed"), std::string::npos) << r2.error;
  EXPECT_EQ(r1.status, CallStatus::Ok) << r1.error;
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(rt.telemetry().metrics().context(1).rpc_rejected, 1u);
}

TEST(Rpc, AdmissionQueuePolicyParksThenRunsAndRejectsPastCap) {
  RuntimeOptions opts = rpc_opts();
  opts.db.set("rpc.max_inflight", "1");
  opts.db.set("rpc.queue_cap", "1");  // policy defaults to "queue"
  Runtime rt(opts);
  std::atomic<bool> done{false};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  CallResult r1, r2, r3;
  Server::Stats stats;
  std::size_t depth_at_peak = 0;

  run_mpmd(
      rt,
      {[&](Context& ctx) {  // client
         Client cl(ctx);
         util::PackBuffer args(4);
         const auto id1 = cl.call(1, "spin", args);
         while (!entered.load(std::memory_order_acquire) &&
                ctx.now() < 1000 * kMs) {
           if (!ctx.progress()) ctx.compute_with_polling(200 * kUs, 50 * kUs);
         }
         const auto id2 = cl.call(1, "spin", args);  // parks in the queue
         const auto id3 = cl.call(1, "spin", args);  // queue full: rejected
         r3 = cl.wait(id3);
         release.store(true, std::memory_order_release);
         r1 = cl.wait(id1);
         r2 = cl.wait(id2);
         done.store(true, std::memory_order_release);
       },
       server_fn(
           done,
           [&](Server& srv) {
             srv.serve("spin", [&](CallContext& cc) {
               entered.store(true, std::memory_order_release);
               while (!release.load(std::memory_order_acquire) &&
                      cc.context().now() < 1000 * kMs) {
                 cc.context().compute_with_polling(200 * kUs, 50 * kUs);
               }
             });
           },
           [&](Server& srv) {
             stats = srv.stats();
             depth_at_peak = srv.queue_depth();  // drained by then
           })});

  EXPECT_EQ(r3.status, CallStatus::Rejected);
  EXPECT_NE(r3.error.find("queue full"), std::string::npos) << r3.error;
  EXPECT_EQ(r1.status, CallStatus::Ok);
  EXPECT_EQ(r2.status, CallStatus::Ok);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(depth_at_peak, 0u);
}

TEST(Rpc, BulkPullReassemblesWithOneAllocation) {
  constexpr std::size_t kSize = 100'000;  // 13 chunks at the 8192 default
  Runtime rt(rpc_opts());
  std::atomic<bool> done{false};
  CallResult res;
  std::uint64_t allocs = 0, transfers = 0;

  util::Bytes region(kSize);
  for (std::size_t i = 0; i < kSize; ++i) {
    region[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  std::uint64_t expected_sum = 0;
  for (const std::uint8_t b : region) expected_sum += b;

  run_mpmd(
      rt,
      {[&](Context& ctx) {  // client owns the bulk region
         Client cl(ctx);
         const BulkHandle h =
             cl.register_bulk(util::SharedBytes(std::move(region)));
         ASSERT_TRUE(h.valid());
         ASSERT_EQ(h.size, kSize);
         util::PackBuffer args(4);
         const auto id = cl.call_bulk(1, "sum", args, h);
         res = cl.wait(id);
         cl.release_bulk(h);
         done.store(true, std::memory_order_release);
       },
       server_fn(
           done,
           [&](Server& srv) {
             srv.serve("sum", [](CallContext& cc) {
               ASSERT_TRUE(cc.has_bulk());
               std::uint64_t sum = 0;
               for (const std::uint8_t b : cc.bulk().span()) sum += b;
               util::PackBuffer pb(16);
               pb.put_u64(cc.bulk().size());
               pb.put_u64(sum);
               cc.respond(pb);
             });
           },
           [&](Server& srv) {
             allocs = srv.reassembly_allocs();
             transfers = srv.stats().bulk_transfers;
           })});

  ASSERT_EQ(res.status, CallStatus::Ok) << res.error;
  util::UnpackBuffer ub(res.payload.span());
  EXPECT_EQ(ub.get_u64(), static_cast<std::uint64_t>(kSize));
  EXPECT_EQ(ub.get_u64(), expected_sum);
  // Zero-copy acceptance gate: exactly one receive-side allocation per
  // transfer, regardless of chunk count.
  EXPECT_EQ(transfers, 1u);
  EXPECT_EQ(allocs, 1u);
  EXPECT_EQ(rt.telemetry().metrics().context(1).rpc_bulk_pull_chunks,
            (kSize + 8191) / 8192);
  EXPECT_EQ(rt.telemetry().metrics().context(1).rpc_bulk_mb_s.count(), 1u);
}

// Satellite: pulls naming a released handle or a window past the region's
// end get a typed protocol error frame, surfacing as BulkError.
TEST(Rpc, BulkErrorsAreTypedNotFaults) {
  Runtime rt(rpc_opts());
  std::atomic<bool> done{false};
  CallResult stale_res, range_res;
  std::uint64_t failures = 0;

  run_mpmd(
      rt,
      {[&](Context& ctx) {
         Client cl(ctx);
         util::PackBuffer args(4);
         // Released before the call: the server's pull must be refused.
         const BulkHandle stale = cl.register_bulk(bytes_of(12, 0x5a));
         cl.release_bulk(stale);
         stale_res = cl.wait(cl.call_bulk(1, "sum", args, stale));
         // Registered, but the descriptor lies about the size: the first
         // pull window runs past the region's end.
         const BulkHandle real = cl.register_bulk(bytes_of(5, 0x11));
         const BulkHandle lying{real.id, real.size + 64};
         range_res = cl.wait(cl.call_bulk(1, "sum", args, lying));
         done.store(true, std::memory_order_release);
       },
       server_fn(
           done,
           [&](Server& srv) {
             srv.serve("sum", [](CallContext& cc) {
               util::PackBuffer pb(8);
               pb.put_u64(cc.bulk().size());
               cc.respond(pb);
             });
           },
           [&](Server& srv) { failures = srv.stats().bulk_failures; })});

  EXPECT_EQ(stale_res.status, CallStatus::BulkError);
  EXPECT_NE(stale_res.error.find("unknown handle"), std::string::npos)
      << stale_res.error;
  EXPECT_EQ(range_res.status, CallStatus::BulkError);
  EXPECT_NE(range_res.error.find("out of range"), std::string::npos)
      << range_res.error;
  EXPECT_EQ(failures, 2u);
  // Both halves counted the protocol errors: the provider (client context)
  // when refusing, the puller (server context) when aborting.
  EXPECT_EQ(rt.telemetry().metrics().context(0).rpc_bulk_errors, 2u);
  EXPECT_EQ(rt.telemetry().metrics().context(1).rpc_bulk_errors, 2u);
}

TEST(Rpc, PeerDiedFailsFastOnDeadVerdict) {
  RuntimeOptions opts =
      opts_with({"local", "udp"}, simnet::Topology::single_partition(2));
  opts.threads = 1;
  opts.faults.blackhole("udp", 0, 5 * kMs);  // every send fails hard
  Runtime rt(opts);
  CallResult res;

  run_mpmd(rt, {[&](Context& ctx) {
                  Client cl(ctx);
                  util::PackBuffer args(4);
                  const auto id = cl.call(1, "echo", args);
                  // Failover exhausted with no dead-letter budget: the call
                  // fails fast instead of hanging.
                  EXPECT_TRUE(cl.done(id));
                  res = cl.take(id);
                },
                [&](Context&) {}});

  EXPECT_EQ(res.status, CallStatus::PeerDied);
  EXPECT_EQ(rt.telemetry().metrics().context(0).rpc_peer_died, 1u);
}

// Satellite: explain_selection() gains an rpc row naming the method the
// last call to each peer rode.
TEST(Rpc, ExplainSelectionReportsLastCallMethod) {
  Runtime rt(rpc_opts());
  std::atomic<bool> done{false};
  std::string text, json;
  bool row_found = false;
  std::string row_method;

  run_mpmd(rt, {[&](Context& ctx) {
                  Client cl(ctx);
                  util::PackBuffer args(4);
                  cl.wait(cl.call(1, "echo", args));
                  Startpoint sp = ctx.world_startpoint(1);
                  const auto rep = ctx.explain_selection(sp);
                  for (const auto& row : rep.rpc) {
                    if (row.peer == 1) {
                      row_found = true;
                      row_method = row.method;
                    }
                  }
                  text = rep.to_text();
                  json = rep.to_json();
                  done.store(true, std::memory_order_release);
                },
                server_fn(done, [](Server& srv) {
                  srv.serve("echo", [](CallContext&) {});
                })});

  ASSERT_TRUE(row_found);
  EXPECT_EQ(row_method, "tcp");  // the only remote-capable method configured
  EXPECT_NE(text.find("rpc: last call"), std::string::npos) << text;
  EXPECT_NE(json.find("\"rpc\":"), std::string::npos) << json;
}

// A bulk call under tracing stitches request, pulls, chunks, and reply
// into one trace.
TEST(Rpc, TraceStitchesCallPullChunkReply) {
  RuntimeOptions opts = rpc_opts();
  opts.tracing = true;
  Runtime rt(opts);
  std::atomic<bool> done{false};

  run_mpmd(rt, {[&](Context& ctx) {
                  Client cl(ctx);
                  const BulkHandle h = cl.register_bulk(bytes_of(20000, 'x'));
                  util::PackBuffer args(4);
                  const auto res = cl.wait(cl.call_bulk(1, "sum", args, h));
                  EXPECT_EQ(res.status, CallStatus::Ok) << res.error;
                  done.store(true, std::memory_order_release);
                },
                server_fn(done, [](Server& srv) {
                  srv.serve("sum", [](CallContext& cc) {
                    util::PackBuffer pb(8);
                    pb.put_u64(cc.bulk().size());
                    cc.respond(pb);
                  });
                })});

  std::uint64_t call_trace = 0;
  for (const auto& ev : rt.telemetry().tracer().events()) {
    if (ev.phase == telemetry::Phase::RpcCall && ev.trace != 0) {
      call_trace = ev.trace;
    }
  }
  ASSERT_NE(call_trace, 0u);
  bool saw_pull = false, saw_chunk = false, saw_reply = false;
  for (const auto& ev : nexus::testing::events_of_trace(rt, call_trace)) {
    if (ev.phase == telemetry::Phase::RpcPull) saw_pull = true;
    if (ev.phase == telemetry::Phase::RpcChunk) saw_chunk = true;
    if (ev.phase == telemetry::Phase::RpcReply) saw_reply = true;
  }
  EXPECT_TRUE(saw_pull);
  EXPECT_TRUE(saw_chunk);
  EXPECT_TRUE(saw_reply);
}

TEST(Rpc, MetricsReachEveryExportFormat) {
  Runtime rt(rpc_opts());
  std::atomic<bool> done{false};

  run_mpmd(rt, {[&](Context& ctx) {
                  Client cl(ctx);
                  util::PackBuffer args(4);
                  cl.wait(cl.call(1, "echo", args));
                  CallOptions opts;
                  opts.timeout = 2 * kMs;
                  cl.wait(cl.call(1, "ghost.service.on.live.server", args));
                  done.store(true, std::memory_order_release);
                },
                server_fn(done, [](Server& srv) {
                  srv.serve("echo", [](CallContext&) {});
                })});

  const std::string text = rt.telemetry().metrics().to_text();
  EXPECT_NE(text.find("rpc: calls"), std::string::npos) << text;
  const std::string json = rt.telemetry().metrics().to_json();
  for (const char* field : {"\"rpc_calls\":", "\"rpc_deadline_exceeded\":",
                            "\"rpc_cancelled\":", "\"rpc_rejected\":",
                            "\"rpc_bulk_pull_chunks\":", "\"rpc_call_ns\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  const std::string prom = rt.telemetry().metrics().to_prometheus();
  for (const char* name :
       {"nexus_rpc_calls_total", "nexus_rpc_deadline_exceeded_total",
        "nexus_rpc_rejected_total", "nexus_rpc_call_ns",
        "nexus_rpc_bulk_mb_s"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << name;
  }
}

}  // namespace
