// RPC exactly-once completion property (docs/ARCHITECTURE.md §15).
//
// Across seeded random fault plans -- server crash/restart windows stacked
// with udp drop storms, delay windows, and blackholes -- every call a
// client issues reaches EXACTLY one terminal status from {Ok,
// DeadlineExceeded, Cancelled, PeerDied, Rejected, HandlerError,
// BulkError}: no call hangs (every trial's wait_all() converges inside the
// virtual-time bound because every call carries a deadline) and no reply
// is delivered twice (duplicates and post-terminal replies are dropped as
// late).  Ok replies must carry the correct echoed payload.
//
// The client (context 0) is never crashed; the two servers crash and
// restart mid-call, so calls resolve through the full spread of paths:
// normal replies, deadline expiry, fail-fast Dead verdicts, peer-death
// detection, admission control under the tiny rpc.max_inflight, bulk pulls
// that die mid-transfer, and cancellation racing all of the above.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "proto/rpc/rpc.hpp"
#include "util/rng.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;
using proto::rpc::BulkHandle;
using proto::rpc::CallContext;
using proto::rpc::CallId;
using proto::rpc::CallOptions;
using proto::rpc::CallResult;
using proto::rpc::CallStatus;
using proto::rpc::Client;
using proto::rpc::Server;
using simnet::kMs;
using simnet::kUs;

constexpr int kTrials = 200;
constexpr int kCalls = 6;                ///< per trial
constexpr Time kDeadline = 4000 * kMs;   ///< virtual-time give-up guard

simnet::FaultPlan random_plan(util::Rng& rng, ContextId world) {
  simnet::FaultPlan plan;
  for (ContextId c = 1; c < world; ++c) {
    if (!rng.chance(0.7)) continue;
    const Time from = rng.uniform(0, 40 * kMs);
    plan.crash(c, from, from + rng.uniform(5 * kMs, 120 * kMs));
  }
  if (rng.chance(0.5)) plan.drop("udp", 0.4 * rng.next_double());
  if (rng.chance(0.4)) {
    const Time from = rng.uniform(0, 80 * kMs);
    const Time until = from + rng.uniform(10 * kMs, 150 * kMs);
    if (rng.chance(0.5)) {
      plan.drop("udp", 0.6 * rng.next_double(), from, until);
    } else {
      plan.delay("udp", rng.uniform(0, 4 * kMs), from, until);
    }
  }
  if (rng.chance(0.25)) {
    const Time from = rng.uniform(0, 60 * kMs);
    plan.blackhole("udp", from, from + rng.uniform(10 * kMs, 80 * kMs));
  }
  return plan;
}

bool terminal_status(CallStatus s) {
  switch (s) {
    case CallStatus::Ok:
    case CallStatus::DeadlineExceeded:
    case CallStatus::Cancelled:
    case CallStatus::PeerDied:
    case CallStatus::Rejected:
    case CallStatus::HandlerError:
    case CallStatus::BulkError:
      return true;
    case CallStatus::Pending:
      return false;
  }
  return false;
}

void run_rpc_trial(std::uint64_t seed) {
  util::Rng rng(seed);
  constexpr ContextId kWorld = 3;  // client + two crashing servers

  std::vector<std::string> modules = {"local", "rel+udp"};
  if (rng.chance(0.5)) modules.push_back("tcp");
  RuntimeOptions opts =
      opts_with(std::move(modules), simnet::Topology::single_partition(kWorld));
  opts.faults = random_plan(rng, kWorld);
  opts.seed = seed;
  opts.threads = 1;  // deadline/crash interleavings ride the shared clock
  opts.costs.udp_drop_prob = 0.25 * rng.next_double();
  // A dead-letter budget on some trials parks failed requests instead of
  // failing them fast; redelivered requests after a rebirth produce replies
  // the client must drop as late once the deadline has resolved the call.
  if (rng.chance(0.4)) {
    opts.db.set("robust.retry_budget", "2");
    opts.db.set("robust.peer_grace_ms", "5");
  }
  opts.db.set("rel.max_retries", "25");
  opts.db.set("rel.rto_initial_us", "4000");
  opts.db.set("rel.rto_min_us", "1000");
  opts.db.set("rel.rto_max_us", "80000");
  opts.db.set("rel.ack_delay_us", "500");
  opts.db.set("rpc.max_inflight", "2");
  opts.db.set("rpc.queue_cap", rng.chance(0.5) ? "0" : "2");
  if (rng.chance(0.3)) opts.db.set("rpc.admission", "shed");
  Runtime rt(opts);

  std::atomic<bool> client_done{false};
  int completed = 0;

  std::vector<std::function<void(Context&)>> fns;
  fns.push_back([&](Context& ctx) {  // client, never crashed
    Client cl(ctx);
    const BulkHandle bulk =
        cl.register_bulk(util::SharedBytes(util::Bytes(3000, 0xc3)));
    std::map<CallId, std::uint64_t> expect;  // echoed payload per Ok call
    std::vector<CallId> ids;
    for (int i = 0; i < kCalls; ++i) {
      const ContextId server = rng.chance(0.5) ? 1 : 2;
      CallOptions copts;
      copts.timeout = rng.uniform(5 * kMs, 80 * kMs);  // never unbounded
      util::PackBuffer args(16);
      const std::uint64_t token = seed ^ (0x9e3779b97f4a7c15ull * (i + 1));
      args.put_u64(token);
      CallId id = 0;
      const double shape = rng.next_double();
      if (shape < 0.15) {
        id = cl.call(server, "nope", args, copts);  // unknown service
      } else if (shape < 0.35) {
        id = cl.call_bulk(server, "echo", args, bulk, copts);
        expect.emplace(id, token);
      } else {
        id = cl.call(server, "echo", args, copts);
        expect.emplace(id, token);
      }
      ids.push_back(id);
      if (rng.chance(0.2)) {
        cl.cancel(id);
        expect.erase(id);
      }
      if (rng.chance(0.6)) {
        ctx.compute_with_polling(rng.uniform(100 * kUs, 5 * kMs), 100 * kUs);
      }
    }
    cl.wait_all();
    ASSERT_EQ(cl.outstanding(), 0u) << "seed " << seed;
    for (const CallId id : ids) {
      ASSERT_TRUE(cl.done(id)) << "seed " << seed;
      const CallResult res = cl.take(id);
      ASSERT_TRUE(terminal_status(res.status))
          << "seed " << seed << " status "
          << proto::rpc::call_status_name(res.status);
      if (res.status == CallStatus::Ok && expect.count(id) != 0) {
        util::UnpackBuffer ub(res.payload.span());
        ASSERT_EQ(ub.get_u64(), expect[id])
            << "seed " << seed << ": Ok reply with wrong payload";
      }
      ++completed;
    }
    // take() consumed every id: a second take must refuse, proving a call
    // cannot complete (or be observed) twice.
    ASSERT_THROW(cl.take(ids.front()), util::UsageError);
    ASSERT_LT(ctx.now(), kDeadline) << "seed " << seed << ": trial hung";
    client_done.store(true, std::memory_order_release);
  });
  for (ContextId s = 1; s < kWorld; ++s) {
    fns.push_back([&](Context& ctx) {  // crashing server
      Server srv(ctx);
      srv.serve("echo", [](CallContext& cc) {
        auto ub = cc.args();
        util::PackBuffer pb(16);
        pb.put_u64(ub.get_u64());
        if (cc.has_bulk()) pb.put_u64(cc.bulk().size());
        cc.respond(pb);
      });
      while (!client_done.load(std::memory_order_acquire) &&
             ctx.now() < kDeadline) {
        if (!ctx.progress()) ctx.compute_with_polling(500 * kUs, 100 * kUs);
        srv.service();
      }
    });
  }
  rt.run(std::move(fns));

  ASSERT_EQ(completed, kCalls) << "seed " << seed;
}

TEST(RpcProperty, EveryCallCompletesExactlyOnceUnderChaos) {
  const std::uint64_t base = nexus::testing::test_seed();
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t state = base ^ (0xa076bcf7d4e89ull * (t + 1));
    const std::uint64_t seed = util::splitmix64(state);
    run_rpc_trial(seed);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "trial " << t << " (seed " << seed << ") failed";
    }
  }
}

}  // namespace
