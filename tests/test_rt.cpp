// Tests for the realtime (thread) fabric: the same Nexus semantics running
// on real std::threads with queue transports.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "nexus/runtime.hpp"
#include "proto/rt_modules.hpp"
#include "proto/sim_modules.hpp"

namespace {

using namespace nexus;

RuntimeOptions rt_opts(simnet::Topology topo) {
  RuntimeOptions opts;
  opts.fabric = RuntimeOptions::Fabric::Realtime;
  opts.topology = std::move(topo);
  opts.modules = {"local", "mpl", "tcp"};
  return opts;
}

TEST(Realtime, BasicRsrAcrossThreads) {
  Runtime rt(rt_opts(simnet::Topology::single_partition(2)));
  std::atomic<int> received{0};
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("hit",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               received.fetch_add(1);
                               ++done;
                             });
        ctx.wait_count(done, 3);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        for (int i = 0; i < 3; ++i) ctx.rsr(sp, "hit");
      }});
  EXPECT_EQ(received.load(), 3);
}

TEST(Realtime, PartitionRuleStillApplies) {
  Runtime rt(rt_opts(simnet::Topology::two_partitions(1, 1)));
  std::string method;
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("hit",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++done;
                             });
        ctx.wait_count(done, 1);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        ctx.rsr(sp, "hit");
        method = sp.selected_method();
      }});
  EXPECT_EQ(method, "tcp");  // mpl inapplicable across partitions
}

TEST(Realtime, PayloadsCrossIntact) {
  Runtime rt(rt_opts(simnet::Topology::single_partition(2)));
  std::string got;
  double value = 0.0;
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("data",
                             [&](Context&, Endpoint&,
                                 util::UnpackBuffer& ub) {
                               got = ub.get_string();
                               value = ub.get_f64();
                               ++done;
                             });
        ctx.wait_count(done, 1);
      },
      [&](Context& ctx) {
        util::PackBuffer pb;
        pb.put_string("realtime payload");
        pb.put_f64(6.25);
        Startpoint sp = ctx.world_startpoint(0);
        ctx.rsr(sp, "data", pb);
      }});
  EXPECT_EQ(got, "realtime payload");
  EXPECT_EQ(value, 6.25);
}

TEST(Realtime, StartpointTransferWorks) {
  Runtime rt(rt_opts(simnet::Topology::single_partition(2)));
  std::atomic<bool> replied{false};
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler(
            "call-me-back", [&](Context& c, Endpoint&,
                                util::UnpackBuffer& ub) {
              Startpoint back = c.unpack_startpoint(ub);
              c.rsr(back, "reply");
              ++done;
            });
        ctx.wait_count(done, 1);
      },
      [&](Context& ctx) {
        std::uint64_t got = 0;
        ctx.register_handler("reply",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               replied.store(true);
                               ++got;
                             });
        Startpoint to0 = ctx.world_startpoint(0);
        Startpoint back = ctx.startpoint_to(ctx.root_endpoint());
        util::PackBuffer pb;
        ctx.pack_startpoint(pb, back);
        ctx.rsr(to0, "call-me-back", pb);
        ctx.wait_count(got, 1);
      }});
  EXPECT_TRUE(replied.load());
}

TEST(Realtime, BlockingPollerDelivers) {
  Runtime rt(rt_opts(simnet::Topology::two_partitions(1, 1)));
  std::atomic<int> hits{0};
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("hit",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               hits.fetch_add(1);
                               ++done;
                             });
        // Hand TCP to a real blocking thread; the engine stops polling it.
        ctx.set_blocking_poller("tcp", true);
        EXPECT_FALSE(ctx.poll_enabled("tcp"));
        ctx.wait_count(done, 5);
        ctx.set_blocking_poller("tcp", false);
        EXPECT_TRUE(ctx.poll_enabled("tcp"));
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        for (int i = 0; i < 5; ++i) ctx.rsr(sp, "hit");
      }});
  EXPECT_EQ(hits.load(), 5);
}

TEST(Realtime, ManyContextsManyMessages) {
  constexpr int kCtx = 6;
  constexpr int kEach = 50;
  Runtime rt(rt_opts(simnet::Topology::single_partition(kCtx)));
  std::atomic<int> total{0};
  rt.run([&](Context& ctx) {
    std::uint64_t mine = 0;
    ctx.register_handler("hit",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           total.fetch_add(1);
                           ++mine;
                         });
    // Everyone sends to everyone else, then waits for its own share.
    for (ContextId t = 0; t < kCtx; ++t) {
      if (t == ctx.id()) continue;
      Startpoint sp = ctx.world_startpoint(t);
      for (int i = 0; i < kEach; ++i) ctx.rsr(sp, "hit");
    }
    ctx.wait_count(mine, static_cast<std::uint64_t>(kEach) * (kCtx - 1));
  });
  EXPECT_EQ(total.load(), kEach * kCtx * (kCtx - 1));
}

TEST(Realtime, ExceptionPropagatesFromContextThread) {
  Runtime rt(rt_opts(simnet::Topology::single_partition(2)));
  EXPECT_THROW(
      rt.run(std::vector<std::function<void(Context&)>>{
          [](Context&) { throw std::runtime_error("context failure"); },
          [](Context&) {}}),
      std::runtime_error);
}

TEST(Realtime, SimOnlyModulesRejected) {
  RuntimeOptions opts = rt_opts(simnet::Topology::single_partition(1));
  opts.modules = {"local", "myrinet"};  // myrinet has no realtime variant
  Runtime rt(opts);
  EXPECT_THROW(rt.run([](Context&) {}), util::MethodError);
}

TEST(Realtime, WrapperMethodsRoundtrip) {
  RuntimeOptions opts = rt_opts(simnet::Topology::two_partitions(1, 1));
  opts.modules = {"local", "mpl", "tcp", "secure", "zrle"};
  Runtime rt(opts);
  std::string via_secure, via_zrle;
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("s", [&](Context&, Endpoint&,
                                      util::UnpackBuffer& ub) {
          via_secure = ub.get_string();
          ++done;
        });
        ctx.register_handler("z", [&](Context&, Endpoint&,
                                      util::UnpackBuffer& ub) {
          via_zrle = ub.get_string();
          ++done;
        });
        ctx.wait_count(done, 2);
      },
      [&](Context& ctx) {
        Startpoint sec = ctx.world_startpoint(0);
        sec.force_method("secure");
        util::PackBuffer a;
        a.put_string("sealed-for-transit");
        ctx.rsr(sec, "s", a);

        Startpoint zip = ctx.world_startpoint(0);
        zip.force_method("zrle");
        util::PackBuffer b;
        b.put_string("compressed-for-transit");
        ctx.rsr(zip, "z", b);
      }});
  EXPECT_EQ(via_secure, "sealed-for-transit");
  EXPECT_EQ(via_zrle, "compressed-for-transit");
}

TEST(Realtime, MulticastFansOut) {
  RuntimeOptions opts = rt_opts(simnet::Topology::single_partition(4));
  opts.modules = {"local", "mpl", "tcp", "mcast"};
  Runtime rt(opts);
  std::atomic<int> hits{0};
  std::atomic<int> joined{0};
  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      while (joined.load() < 3) std::this_thread::yield();
      Startpoint group = nexus::proto::multicast_startpoint(ctx, 11);
      ctx.rsr(group, "update");
      return;
    }
    std::uint64_t done = 0;
    Endpoint& ep = ctx.create_endpoint();
    ctx.register_handler("update",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           hits.fetch_add(1);
                           ++done;
                         });
    nexus::proto::multicast_join(ctx, 11, ep);
    joined.fetch_add(1);
    ctx.wait_count(done, 1);
  });
  EXPECT_EQ(hits.load(), 3);
}

TEST(Realtime, UdpDropsForReal) {
  RuntimeOptions opts = rt_opts(simnet::Topology::single_partition(2));
  opts.modules = {"local", "mpl", "tcp", "udp"};
  opts.costs.udp_drop_prob = 1.0;  // drop everything (deterministic)
  Runtime rt(opts);
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context&) {},
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        sp.force_method("udp");
        for (int i = 0; i < 5; ++i) ctx.rsr(sp, "void");
        auto* udp = dynamic_cast<nexus::proto::RtUdpModule*>(
            ctx.module("udp"));
        ASSERT_NE(udp, nullptr);
        EXPECT_EQ(udp->dropped(), 5u);
      }});
}

}  // namespace
