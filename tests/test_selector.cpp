// Tests for automatic method selection policies (paper §3.2).
#include <gtest/gtest.h>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "nexus/selector.hpp"
#include "nexus/telemetry/selection_report.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;

TEST(Selector, FirstApplicableHonoursTableOrder) {
  // Figure 3 scenario: a startpoint whose table lists [mpl, tcp].  From the
  // same partition mpl wins; from another partition it is skipped.
  Runtime rt(opts_with({"local", "mpl", "tcp"},
                       simnet::Topology::two_partitions(2, 1)));
  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) return;
    FirstApplicableSelector sel;
    std::string reason;
    const DescriptorTable& table = ctx.runtime().table_of(0);
    auto idx = sel.select(table, ctx, reason);
    ASSERT_TRUE(idx.has_value());
    if (ctx.id() == 1) {
      EXPECT_EQ(table.at(*idx).method, "mpl");  // same partition as 0
    } else {
      EXPECT_EQ(table.at(*idx).method, "tcp");  // partition 1
    }
  });
}

TEST(Selector, FastestFirstOrderingOfLocalTable) {
  // The local table must be ordered by speed rank so the ordered scan gives
  // a fastest-first policy.
  Runtime rt(opts_with({"tcp", "local", "mpl", "myrinet"},
                       simnet::Topology::single_partition(1)));
  rt.run([&](Context& ctx) {
    const auto& entries = ctx.local_table().entries();
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries[0].method, "local");
    EXPECT_EQ(entries[1].method, "myrinet");
    EXPECT_EQ(entries[2].method, "mpl");
    EXPECT_EQ(entries[3].method, "tcp");
  });
}

TEST(Selector, NoApplicableMethodReturnsNullopt) {
  // Context 1 only speaks mpl+local and sits in another partition.
  RuntimeOptions opts = opts_with({"local", "mpl"},
                                  simnet::Topology::two_partitions(1, 1));
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    FirstApplicableSelector sel;
    std::string reason;
    auto idx = sel.select(ctx.runtime().table_of(0), ctx, reason);
    EXPECT_FALSE(idx.has_value());
    EXPECT_EQ(reason, "no applicable entry");

    Startpoint sp = ctx.world_startpoint(0);
    EXPECT_THROW(ctx.rsr(sp, "x"), util::MethodError);
  });
}

TEST(Selector, QosPrefersFastestRegardlessOfTableOrder) {
  Runtime rt(opts_with({"local", "mpl", "tcp"},
                       simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    // Table deliberately reordered slowest-first.
    DescriptorTable table = ctx.runtime().table_of(0);
    table.prioritize("tcp");
    QosSelector sel;
    std::string reason;
    auto idx = sel.select(table, ctx, reason);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(table.at(*idx).method, "mpl");
  });
}

TEST(Selector, QosLoadPenaltyDivertsTraffic) {
  Runtime rt(opts_with({"local", "mpl", "tcp"},
                       simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    // Pretend mpl has a huge backlog: outstanding bytes penalize it.
    ctx.module("mpl")->counters().bytes_sent = 100'000'000;
    QosSelector sel(/*load_penalty_bytes=*/1'000'000);
    std::string reason;
    auto idx = sel.select(ctx.runtime().table_of(0), ctx, reason);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(ctx.runtime().table_of(0).at(*idx).method, "tcp");
  });
}

TEST(Selector, RandomOnlyPicksApplicable) {
  Runtime rt(opts_with({"local", "mpl", "tcp"},
                       simnet::Topology::two_partitions(1, 1)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    RandomSelector sel(7);
    std::string reason;
    for (int i = 0; i < 50; ++i) {
      auto idx = sel.select(ctx.runtime().table_of(0), ctx, reason);
      ASSERT_TRUE(idx.has_value());
      // mpl/local are inapplicable across partitions: must always be tcp.
      EXPECT_EQ(ctx.runtime().table_of(0).at(*idx).method, "tcp");
    }
  });
}

TEST(Selector, PeekMatchesSelectForStatelessPolicies) {
  Runtime rt(opts_with({"local", "mpl", "tcp"},
                       simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    const DescriptorTable& table = ctx.runtime().table_of(0);
    FirstApplicableSelector first;
    QosSelector qos;
    for (MethodSelector* sel : {static_cast<MethodSelector*>(&first),
                                static_cast<MethodSelector*>(&qos)}) {
      std::string ra, rb;
      auto peeked = sel->peek(table, ctx, ra);
      auto selected = sel->select(table, ctx, rb);
      EXPECT_EQ(peeked, selected) << sel->name();
      EXPECT_EQ(ra, rb) << sel->name();
    }
  });
}

TEST(Selector, ExplainIsSideEffectFreeForStatefulPolicies) {
  // The enquiry regression: interleaving peeks and explains with selects
  // must leave a stateful policy's decision stream exactly as if only the
  // selects had run.  Two same-seed RandomSelectors, one probed, one not.
  Runtime rt(opts_with({"local", "mpl", "tcp"},
                       simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    const DescriptorTable& table = ctx.runtime().table_of(0);
    RandomSelector probed(1234), control(1234);
    for (int i = 0; i < 25; ++i) {
      std::string scratch;
      const auto preview = probed.peek(table, ctx, scratch);
      (void)probed.peek(table, ctx, scratch);
      telemetry::LinkReport lr;
      probed.explain(table, ctx, lr);
      probed.explain(table, ctx, lr);
      std::string ra, rb;
      const auto a = probed.select(table, ctx, ra);
      const auto b = control.select(table, ctx, rb);
      ASSERT_EQ(a, b) << "round " << i;
      // peek() previews exactly the next select().
      ASSERT_EQ(preview, a) << "round " << i;
    }
  });
}

TEST(Selector, InstalledSelectorUsedByRsr) {
  Runtime rt(opts_with({"local", "mpl", "tcp"},
                       simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("noop",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           ++done;
                         });
    if (ctx.id() != 1) {
      ctx.wait_count(done, 1);
      return;
    }
    ctx.set_selector(std::make_unique<QosSelector>());
    Startpoint sp = ctx.world_startpoint(0);
    // Reorder the table slowest-first: QoS ignores the order.
    sp.table().prioritize("tcp");
    sp.invalidate_selection();
    ctx.rsr(sp, "noop");
    EXPECT_EQ(sp.selected_method(), "mpl");
    EXPECT_THROW(ctx.set_selector(nullptr), util::UsageError);
  });
}

}  // namespace
