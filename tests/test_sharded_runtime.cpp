// Thread-per-core sharded runtime: contexts are distributed round-robin
// across N scheduler shards, each driven by its own OS thread, with
// cross-shard packet posts routed through lock-free MPSC mailboxes
// (docs/ARCHITECTURE.md §13).
//
// These tests pin the contracts the sharding must preserve:
//   * option/env/db resolution and clamping of the shard count,
//   * delivery correctness across shard boundaries (unicast, multicast,
//     reliable exactly-once over lossy links),
//   * global termination + deadlock detection spanning all shards,
//   * exception propagation from a worker shard to Runtime::run,
//   * threads=1 staying bit-deterministic (same seed -> same outcome).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "proto/reliable.hpp"
#include "proto/sim_modules.hpp"
#include "util/pack.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;
using nexus::testing::register_counter;
using nexus::testing::run_mpmd;
using nexus::testing::sim_opts;

// Scoped control of NEXUS_THREADS: the resolution test exercises every
// rung of the option > env > db > default ladder, so it must not inherit
// whatever the surrounding ctest invocation exported.
class ScopedThreadsEnv {
 public:
  ScopedThreadsEnv() {
    if (const char* v = std::getenv("NEXUS_THREADS")) saved_ = v;
    ::unsetenv("NEXUS_THREADS");
  }
  ~ScopedThreadsEnv() {
    if (saved_.has_value()) {
      ::setenv("NEXUS_THREADS", saved_->c_str(), 1);
    } else {
      ::unsetenv("NEXUS_THREADS");
    }
  }
  static void set(const char* v) { ::setenv("NEXUS_THREADS", v, 1); }
  static void clear() { ::unsetenv("NEXUS_THREADS"); }

 private:
  std::optional<std::string> saved_;
};

TEST(ShardedRuntime, ThreadsResolutionAndClamping) {
  ScopedThreadsEnv env_guard;
  // Explicit option wins and contexts are dealt round-robin over shards.
  {
    RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(8));
    opts.threads = 4;
    Runtime rt(opts);
    EXPECT_EQ(rt.threads(), 4u);
    ASSERT_NE(rt.sim(), nullptr);
    EXPECT_EQ(rt.sim()->shard_count(), 4u);
    for (ContextId id = 0; id < 8; ++id) {
      EXPECT_EQ(rt.sim()->shard_of(id), id % 4);
    }
    EXPECT_TRUE(rt.sim()->same_shard(1, 5));
    EXPECT_FALSE(rt.sim()->same_shard(1, 2));
  }
  // More shards than contexts is clamped to the world size.
  {
    RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(2));
    opts.threads = 16;
    Runtime rt(opts);
    EXPECT_EQ(rt.threads(), 2u);
  }
  // The runtime.threads database key is consulted when no option is set.
  {
    RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(8));
    opts.db.set("runtime.threads", "3");
    Runtime rt(opts);
    EXPECT_EQ(rt.threads(), 3u);
  }
  // The NEXUS_THREADS environment override beats the database key.
  {
    ScopedThreadsEnv::set("2");
    RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(8));
    opts.db.set("runtime.threads", "3");
    Runtime rt(opts);
    EXPECT_EQ(rt.threads(), 2u);
    ScopedThreadsEnv::clear();
  }
  // ...but an explicit option beats the environment.
  {
    ScopedThreadsEnv::set("8");
    RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(8));
    opts.threads = 2;
    Runtime rt(opts);
    EXPECT_EQ(rt.threads(), 2u);
    ScopedThreadsEnv::clear();
  }
  // Default stays single-shard: the historical engine, bit for bit.
  {
    Runtime rt(sim_opts(simnet::Topology::single_partition(4)));
    EXPECT_EQ(rt.threads(), 1u);
    EXPECT_EQ(rt.sim()->shard_count(), 1u);
  }
}

// All-to-all unicast across four shards: every context sends a burst to
// every other context, so every packet with shard_of(src) != shard_of(dst)
// crosses the MPSC router.  Each counter is written only by its owning
// context (= its shard thread), so plain uint64s are race-free.
TEST(ShardedRuntime, CrossShardUnicastAllToAll) {
  constexpr ContextId kWorld = 8;
  constexpr std::uint64_t kBurst = 10;
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(kWorld));
  opts.threads = 4;
  Runtime rt(opts);
  std::uint64_t done[kWorld] = {};

  rt.run([&](Context& ctx) {
    register_counter(ctx, "ping", done[ctx.id()]);
    for (ContextId peer = 0; peer < kWorld; ++peer) {
      if (peer == ctx.id()) continue;
      Startpoint sp = ctx.world_startpoint(peer);
      for (std::uint64_t i = 0; i < kBurst; ++i) {
        util::PackBuffer pb;
        pb.put_u32(static_cast<std::uint32_t>(i));
        ctx.rsr(sp, "ping", pb);
      }
    }
    ctx.wait_count(done[ctx.id()], (kWorld - 1) * kBurst);
  });

  for (ContextId id = 0; id < kWorld; ++id) {
    EXPECT_EQ(done[id], (kWorld - 1) * kBurst) << "context " << id;
  }
}

// Multicast with members on every shard.  Shard virtual clocks advance
// independently, so the sender cannot use a compute() head start (that only
// orders events within one shard); it instead waits for an explicit
// readiness RSR from every member -- which is itself a cross-shard
// causality check.
TEST(ShardedRuntime, CrossShardMulticastReachesEveryMember) {
  constexpr ContextId kWorld = 8;
  constexpr std::uint64_t kSends = 5;
  RuntimeOptions opts = opts_with({"local", "mpl", "tcp", "mcast"},
                                  simnet::Topology::single_partition(kWorld));
  opts.threads = 4;
  Runtime rt(opts);
  std::uint64_t got[kWorld] = {};

  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      std::uint64_t ready = 0;
      register_counter(ctx, "ready", ready);
      ctx.wait_count(ready, kWorld - 1);
      Startpoint group = proto::multicast_startpoint(ctx, 42);
      for (std::uint64_t i = 0; i < kSends; ++i) {
        util::PackBuffer pb;
        pb.put_u32(static_cast<std::uint32_t>(i));
        ctx.rsr(group, "update", pb);
      }
      return;
    }
    Endpoint& ep = ctx.create_endpoint();
    register_counter(ctx, "update", got[ctx.id()]);
    proto::multicast_join(ctx, 42, ep);
    Startpoint home = ctx.world_startpoint(0);
    ctx.rsr(home, "ready");
    ctx.wait_count(got[ctx.id()], kSends);
  });

  for (ContextId id = 1; id < kWorld; ++id) {
    EXPECT_EQ(got[id], kSends) << "member " << id;
  }
  EXPECT_EQ(rt.context(0).method_counters("mcast").sends, kSends);
}

// rel+udp across shard boundaries with a lossy link model: the sliding
// window retransmits over the MPSC router too, and delivery must stay
// exactly-once in-order no matter how shard clocks interleave.
//
// Shard virtual clocks are decoupled, so the single-shard reliable idiom
// (poll until a virtual deadline) does not transfer: one shard can burn
// its whole virtual budget in microseconds of wall time before another
// sends its first frame.  The threaded idiom is purely causal -- the
// receiver blocks on the delivery count (every dispatch also answers
// acks), and the senders keep servicing retransmission timers until the
// receiver announces completion through an atomic.  A wedged run is
// caught by the ctest timeout rather than a virtual deadline.
TEST(ShardedRuntime, ReliableExactlyOnceAcrossShards) {
  using simnet::kMs;
  constexpr ContextId kWorld = 4;
  constexpr std::uint32_t kSends = 30;
  RuntimeOptions opts = opts_with({"local", "rel+udp"},
                                  simnet::Topology::single_partition(kWorld));
  opts.threads = 4;
  opts.costs.udp_drop_prob = 0.2;
  opts.seed = 7;
  opts.db.set("rel.rto_initial_us", "3000");
  opts.db.set("rel.rto_min_us", "1000");
  opts.db.set("rel.ack_delay_us", "500");
  Runtime rt(opts);
  std::vector<std::vector<std::uint32_t>> seen(kWorld);
  std::atomic<bool> all_received{false};

  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      std::uint64_t total = 0;
      ctx.register_handler("item", [&](Context&, Endpoint&,
                                       util::UnpackBuffer& ub) {
        const std::uint32_t from = ub.get_u32();
        seen[from].push_back(ub.get_u32());
        ++total;
      });
      ctx.wait_count(total, (kWorld - 1) * kSends);
      all_received.store(true, std::memory_order_release);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    for (std::uint32_t i = 0; i < kSends; ++i) {
      util::PackBuffer pb;
      pb.put_u32(static_cast<std::uint32_t>(ctx.id()));
      pb.put_u32(i);
      ctx.rsr(sp, "item", pb);
      ctx.compute_with_polling(2 * kMs, 500 * simnet::kUs);
    }
    // Service retransmission timers until the receiver has everything;
    // frames lost to the drop model only arrive through these resends.
    while (!all_received.load(std::memory_order_acquire)) {
      ctx.compute_with_polling(5 * kMs, 1 * kMs);
    }
  });

  for (ContextId src = 1; src < kWorld; ++src) {
    ASSERT_EQ(seen[src].size(), kSends) << "sender " << src;
    for (std::uint32_t i = 0; i < kSends; ++i) {
      EXPECT_EQ(seen[src][i], i) << "sender " << src;  // in-order, no dups
    }
  }
}

// Identical workload at threads=1 and threads=4 must deliver identical
// counts: sharding changes interleaving, never semantics.
TEST(ShardedRuntime, DeliveryCountsMatchSingleShardRun) {
  constexpr ContextId kWorld = 6;
  constexpr std::uint64_t kBurst = 8;
  auto run_once = [&](unsigned threads) {
    RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(kWorld));
    opts.threads = threads;
    Runtime rt(opts);
    std::uint64_t total[kWorld] = {};
    rt.run([&](Context& ctx) {
      register_counter(ctx, "n", total[ctx.id()]);
      Startpoint next = ctx.world_startpoint((ctx.id() + 1) % kWorld);
      Startpoint far = ctx.world_startpoint((ctx.id() + 3) % kWorld);
      for (std::uint64_t i = 0; i < kBurst; ++i) {
        ctx.rsr(next, "n");
        ctx.rsr(far, "n");
      }
      ctx.wait_count(total[ctx.id()], 2 * kBurst);
    });
    std::uint64_t sum = 0;
    for (ContextId id = 0; id < kWorld; ++id) sum += total[id];
    return sum;
  };
  EXPECT_EQ(run_once(1), run_once(4));
}

// A context blocked on a count that can never arrive must still be caught
// by deadlock detection when the blocked proc and the idle procs live on
// different shards: all shards park, global in-flight hits zero, and the
// shard owning the blocked proc reports it.
TEST(ShardedRuntime, DeadlockDetectedAcrossShards) {
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(4));
  opts.threads = 4;
  Runtime rt(opts);
  std::uint64_t never = 0;
  EXPECT_THROW(rt.run([&](Context& ctx) {
                 if (ctx.id() != 2) return;  // three shards go idle
                 register_counter(ctx, "ghost", never);
                 ctx.wait_count(never, 1);   // no one ever sends
               }),
               simnet::DeadlockError);
}

// An exception thrown by a handler on a worker shard aborts the whole
// group -- including procs parked on other shards waiting for counts that
// will now never arrive -- and surfaces from Runtime::run on the caller.
TEST(ShardedRuntime, WorkerShardExceptionPropagates) {
  constexpr ContextId kWorld = 4;
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(kWorld));
  opts.threads = 4;
  Runtime rt(opts);
  std::uint64_t done[kWorld] = {};
  EXPECT_THROW(
      rt.run([&](Context& ctx) {
        if (ctx.id() == 3) {
          ctx.register_handler("boom", [](Context&, Endpoint&,
                                          util::UnpackBuffer&) {
            throw std::runtime_error("handler failure on worker shard");
          });
          ctx.wait_count(done[3], 1);  // blocks forever; abort frees it
          return;
        }
        if (ctx.id() == 0) {
          Startpoint sp = ctx.world_startpoint(3);
          ctx.rsr(sp, "boom");
        }
        register_counter(ctx, "idle", done[ctx.id()]);
        ctx.wait_count(done[ctx.id()], 1);  // also never satisfied
      }),
      std::runtime_error);
}

// threads=1 must stay deterministic: with a fixed seed, a lossy-udp
// workload delivers the exact same packet set on every run.
TEST(ShardedRuntime, SingleShardStaysSeedDeterministic) {
  auto run_once = [&]() {
    RuntimeOptions opts = opts_with({"local", "udp"},
                                    simnet::Topology::single_partition(2));
    opts.threads = 1;
    opts.costs.udp_drop_prob = 0.25;
    opts.seed = 1234;
    Runtime rt(opts);
    std::vector<std::uint32_t> delivered;
    run_mpmd(rt, {[&](Context& ctx) {
                    ctx.register_handler("u", [&](Context&, Endpoint&,
                                                  util::UnpackBuffer& ub) {
                      delivered.push_back(ub.get_u32());
                    });
                    // Lossy link: drain a bounded virtual interval instead
                    // of waiting for a count that may never arrive.
                    const Time deadline = 2 * simnet::kSec;
                    while (ctx.now() < deadline && delivered.size() < 200) {
                      ctx.compute(1 * simnet::kMs);
                      ctx.progress();
                    }
                  },
                  [&](Context& ctx) {
                    Startpoint sp = ctx.world_startpoint(0);
                    for (std::uint32_t i = 0; i < 200; ++i) {
                      util::PackBuffer pb;
                      pb.put_u32(i);
                      ctx.rsr(sp, "u", pb);
                    }
                  }});
    return delivered;
  };
  const std::vector<std::uint32_t> a = run_once();
  const std::vector<std::uint32_t> b = run_once();
  EXPECT_FALSE(a.empty());
  EXPECT_LT(a.size(), 200u);  // the lossy model really dropped some
  EXPECT_EQ(a, b);            // ...but identically on both runs
}

}  // namespace
