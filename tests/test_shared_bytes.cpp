// SharedBytes: the immutable ref-counted buffer underlying zero-copy RSR
// payloads.  These tests pin the ownership semantics the data path relies
// on: adopt moves storage, copy_of snapshots, views alias, and to_bytes is
// the only way out to mutable storage.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "util/pack.hpp"
#include "util/shared_bytes.hpp"

namespace {

using nexus::util::Byte;
using nexus::util::Bytes;
using nexus::util::ByteSpan;
using nexus::util::PackBuffer;
using nexus::util::SharedBytes;

TEST(SharedBytes, DefaultIsEmpty) {
  SharedBytes sb;
  EXPECT_TRUE(sb.empty());
  EXPECT_EQ(sb.size(), 0u);
  EXPECT_EQ(sb.use_count(), 0);
  EXPECT_TRUE(sb.span().empty());
}

TEST(SharedBytes, AdoptReusesVectorStorage) {
  Bytes b{1, 2, 3, 4};
  const Byte* raw = b.data();
  SharedBytes sb(std::move(b));
  ASSERT_EQ(sb.size(), 4u);
  // The vector's heap block was moved into the shared owner, not copied.
  EXPECT_EQ(sb.data(), raw);
  EXPECT_EQ(sb[2], 3);
}

TEST(SharedBytes, CopyOfSnapshotsSource) {
  Bytes src{10, 20, 30};
  SharedBytes sb = SharedBytes::copy_of(src);
  src[0] = 99;  // mutating the source must not affect the snapshot
  ASSERT_EQ(sb.size(), 3u);
  EXPECT_EQ(sb[0], 10);
  EXPECT_NE(sb.data(), src.data());
}

TEST(SharedBytes, CopiesAliasOneBuffer) {
  SharedBytes a = SharedBytes::copy_of(Bytes{5, 6, 7});
  SharedBytes b = a;
  SharedBytes c = b;
  EXPECT_TRUE(a.aliases(b));
  EXPECT_TRUE(a.aliases(c));
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.use_count(), 3);
  c = SharedBytes();
  EXPECT_EQ(a.use_count(), 2);
}

TEST(SharedBytes, ViewAliasesWithoutCopy) {
  SharedBytes whole = SharedBytes::copy_of(Bytes{0, 1, 2, 3, 4, 5});
  SharedBytes mid = whole.view(2, 3);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.data(), whole.data() + 2);
  EXPECT_TRUE(mid.aliases(whole));
  EXPECT_EQ(mid[0], 2);
  EXPECT_THROW(whole.view(4, 3), nexus::util::UsageError);
}

TEST(SharedBytes, ViewKeepsBufferAlive) {
  SharedBytes mid;
  {
    SharedBytes whole = SharedBytes::copy_of(Bytes{7, 8, 9, 10});
    mid = whole.view(1, 2);
  }  // `whole` gone; the view still owns the block
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0], 8);
  EXPECT_EQ(mid[1], 9);
  EXPECT_EQ(mid.use_count(), 1);
}

TEST(SharedBytes, ToBytesIsIndependentCopy) {
  SharedBytes sb = SharedBytes::copy_of(Bytes{1, 1, 2, 3});
  Bytes copy = sb.to_bytes();
  copy[0] = 42;
  EXPECT_EQ(sb[0], 1);
  EXPECT_NE(copy.data(), sb.data());
}

TEST(SharedBytes, PackBufferReleaseMovesStorage) {
  PackBuffer pb;
  pb.put_u32(0xabcd1234u);
  pb.put_string("payload");
  const std::size_t packed = pb.size();
  SharedBytes sb = pb.release();
  EXPECT_EQ(sb.size(), packed);
  EXPECT_EQ(pb.size(), 0u);  // buffer handed off, PackBuffer reusable
  EXPECT_EQ(sb.use_count(), 1);
  EXPECT_EQ(sb[0], 0xab);
}

// --- multi-threaded refcount stress (docs in shared_bytes.hpp header) ---
//
// The refcount contract -- relaxed increments, acq_rel decrements, last
// owner frees exactly once -- is what lets payloads cross shard boundaries.
// These tests hammer it from several threads; run under TSan/ASan in CI
// they would flag any misordered release or double free.

TEST(SharedBytesMt, ConcurrentCopyAndDropStorm) {
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  Bytes seed(64);
  for (std::size_t i = 0; i < seed.size(); ++i) {
    seed[i] = static_cast<Byte>(i * 7 + 1);
  }
  SharedBytes shared = SharedBytes::copy_of(seed);
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Copy (relaxed increment), read through the copy, view-alias a
        // slice, then drop both (acq_rel decrements) every iteration.
        SharedBytes mine = shared;
        if (mine[static_cast<std::size_t>((i + t) % 64)] !=
            static_cast<Byte>(((i + t) % 64) * 7 + 1)) {
          corrupt.store(true);
        }
        SharedBytes slice = mine.view(static_cast<std::size_t>(i % 32), 16);
        if (slice[0] != static_cast<Byte>((i % 32) * 7 + 1)) {
          corrupt.store(true);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(corrupt.load());
  EXPECT_EQ(shared.use_count(), 1);
  EXPECT_EQ(shared[63], static_cast<Byte>(63 * 7 + 1));
}

TEST(SharedBytesMt, LastOwnerOnAnotherThreadFrees) {
  // The producer creates buffers and hands the *only* reference to
  // consumers round-robin; the final decrement (and the free) then always
  // happens on a different thread than the allocation.  A missing release/
  // acquire pairing on the count would let the consumer read freed or
  // partially-visible bytes -- TSan catches it, and the content check
  // catches torn visibility even in plain builds.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<SharedBytes>> handoff(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    handoff[t].reserve(kPerThread);
    for (int i = 0; i < kPerThread; ++i) {
      Bytes b(32);
      for (std::size_t j = 0; j < b.size(); ++j) {
        b[j] = static_cast<Byte>(t + i + j);
      }
      handoff[t].push_back(SharedBytes(std::move(b)));
    }
  }
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SharedBytes mine = std::move(handoff[t][static_cast<std::size_t>(i)]);
        for (std::size_t j = 0; j < mine.size(); ++j) {
          if (mine[j] != static_cast<Byte>(t + i + j)) {
            bad.fetch_add(1);
            break;
          }
        }
      }  // `mine` destroyed here: last owner, off-thread free
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(SharedBytesMt, ViewsOutliveSiblingsAcrossThreads) {
  constexpr int kThreads = 4;
  SharedBytes whole = SharedBytes::copy_of(Bytes{1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<SharedBytes> views(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    views[static_cast<std::size_t>(t)] =
        whole.view(static_cast<std::size_t>(t), 4);
  }
  whole = SharedBytes();  // only the views keep the block alive now
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SharedBytes v = std::move(views[static_cast<std::size_t>(t)]);
      for (int i = 0; i < 10000; ++i) {
        if (v[0] != static_cast<Byte>(t + 1)) corrupt.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(corrupt.load());
}

TEST(SharedBytes, EqualityComparesContents) {
  SharedBytes a = SharedBytes::copy_of(Bytes{1, 2, 3});
  SharedBytes b = SharedBytes::copy_of(Bytes{1, 2, 3});
  SharedBytes c = SharedBytes::copy_of(Bytes{1, 2, 4});
  EXPECT_FALSE(a.aliases(b));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(SharedBytes() == SharedBytes());
}

}  // namespace
