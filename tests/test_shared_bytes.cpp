// SharedBytes: the immutable ref-counted buffer underlying zero-copy RSR
// payloads.  These tests pin the ownership semantics the data path relies
// on: adopt moves storage, copy_of snapshots, views alias, and to_bytes is
// the only way out to mutable storage.
#include <gtest/gtest.h>

#include "util/pack.hpp"
#include "util/shared_bytes.hpp"

namespace {

using nexus::util::Byte;
using nexus::util::Bytes;
using nexus::util::ByteSpan;
using nexus::util::PackBuffer;
using nexus::util::SharedBytes;

TEST(SharedBytes, DefaultIsEmpty) {
  SharedBytes sb;
  EXPECT_TRUE(sb.empty());
  EXPECT_EQ(sb.size(), 0u);
  EXPECT_EQ(sb.use_count(), 0);
  EXPECT_TRUE(sb.span().empty());
}

TEST(SharedBytes, AdoptReusesVectorStorage) {
  Bytes b{1, 2, 3, 4};
  const Byte* raw = b.data();
  SharedBytes sb(std::move(b));
  ASSERT_EQ(sb.size(), 4u);
  // The vector's heap block was moved into the shared owner, not copied.
  EXPECT_EQ(sb.data(), raw);
  EXPECT_EQ(sb[2], 3);
}

TEST(SharedBytes, CopyOfSnapshotsSource) {
  Bytes src{10, 20, 30};
  SharedBytes sb = SharedBytes::copy_of(src);
  src[0] = 99;  // mutating the source must not affect the snapshot
  ASSERT_EQ(sb.size(), 3u);
  EXPECT_EQ(sb[0], 10);
  EXPECT_NE(sb.data(), src.data());
}

TEST(SharedBytes, CopiesAliasOneBuffer) {
  SharedBytes a = SharedBytes::copy_of(Bytes{5, 6, 7});
  SharedBytes b = a;
  SharedBytes c = b;
  EXPECT_TRUE(a.aliases(b));
  EXPECT_TRUE(a.aliases(c));
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.use_count(), 3);
  c = SharedBytes();
  EXPECT_EQ(a.use_count(), 2);
}

TEST(SharedBytes, ViewAliasesWithoutCopy) {
  SharedBytes whole = SharedBytes::copy_of(Bytes{0, 1, 2, 3, 4, 5});
  SharedBytes mid = whole.view(2, 3);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.data(), whole.data() + 2);
  EXPECT_TRUE(mid.aliases(whole));
  EXPECT_EQ(mid[0], 2);
  EXPECT_THROW(whole.view(4, 3), nexus::util::UsageError);
}

TEST(SharedBytes, ViewKeepsBufferAlive) {
  SharedBytes mid;
  {
    SharedBytes whole = SharedBytes::copy_of(Bytes{7, 8, 9, 10});
    mid = whole.view(1, 2);
  }  // `whole` gone; the view still owns the block
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0], 8);
  EXPECT_EQ(mid[1], 9);
  EXPECT_EQ(mid.use_count(), 1);
}

TEST(SharedBytes, ToBytesIsIndependentCopy) {
  SharedBytes sb = SharedBytes::copy_of(Bytes{1, 1, 2, 3});
  Bytes copy = sb.to_bytes();
  copy[0] = 42;
  EXPECT_EQ(sb[0], 1);
  EXPECT_NE(copy.data(), sb.data());
}

TEST(SharedBytes, PackBufferReleaseMovesStorage) {
  PackBuffer pb;
  pb.put_u32(0xabcd1234u);
  pb.put_string("payload");
  const std::size_t packed = pb.size();
  SharedBytes sb = pb.release();
  EXPECT_EQ(sb.size(), packed);
  EXPECT_EQ(pb.size(), 0u);  // buffer handed off, PackBuffer reusable
  EXPECT_EQ(sb.use_count(), 1);
  EXPECT_EQ(sb[0], 0xab);
}

TEST(SharedBytes, EqualityComparesContents) {
  SharedBytes a = SharedBytes::copy_of(Bytes{1, 2, 3});
  SharedBytes b = SharedBytes::copy_of(Bytes{1, 2, 3});
  SharedBytes c = SharedBytes::copy_of(Bytes{1, 2, 4});
  EXPECT_FALSE(a.aliases(b));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(SharedBytes() == SharedBytes());
}

}  // namespace
