// Tests for the discrete-event scheduler and simulated processes.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "simnet/mailbox.hpp"
#include "simnet/process.hpp"
#include "simnet/scheduler.hpp"
#include "simnet/time.hpp"
#include "simnet/topology.hpp"

namespace {

using namespace nexus::simnet;

TEST(Scheduler, SingleProcessAdvances) {
  Scheduler sched;
  Time end = -1;
  auto& p = sched.spawn("solo", [&] {
    SimProcess::current()->advance(100 * kUs);
    end = SimProcess::current()->now();
  });
  sched.run();
  EXPECT_EQ(end, 100 * kUs);
  EXPECT_EQ(p.state(), SimProcess::State::Finished);
}

TEST(Scheduler, ProcessesInterleaveByClock) {
  Scheduler sched;
  std::vector<std::pair<std::string, Time>> order;
  auto worker = [&](Time step, int n) {
    auto* self = SimProcess::current();
    for (int i = 0; i < n; ++i) {
      self->advance(step);
      order.emplace_back(self->name(), self->now());
    }
  };
  sched.spawn("fast", [&] { worker(10 * kUs, 6); });
  sched.spawn("slow", [&] { worker(25 * kUs, 2); });
  sched.run();
  // Events must be recorded in nondecreasing virtual-time order per process,
  // and globally each recorded time matches step arithmetic.
  Time prev_fast = 0, prev_slow = 0;
  for (const auto& [name, t] : order) {
    if (name == "fast") {
      EXPECT_EQ(t, prev_fast + 10 * kUs);
      prev_fast = t;
    } else {
      EXPECT_EQ(t, prev_slow + 25 * kUs);
      prev_slow = t;
    }
  }
  EXPECT_EQ(prev_fast, 60 * kUs);
  EXPECT_EQ(prev_slow, 50 * kUs);
}

TEST(Scheduler, SleepUntilWakesAtRequestedTime) {
  Scheduler sched;
  Time woke = -1;
  sched.spawn("sleeper", [&] {
    SimProcess::current()->sleep_until(3 * kMs);
    woke = SimProcess::current()->now();
  });
  sched.run();
  EXPECT_EQ(woke, 3 * kMs);
}

TEST(Scheduler, WakeAtUnblocksBlockedProcess) {
  Scheduler sched;
  Time woke = -1;
  auto& sleeper = sched.spawn("sleeper", [&] {
    SimProcess::current()->block();
    woke = SimProcess::current()->now();
  });
  sched.spawn("waker", [&] {
    auto* self = SimProcess::current();
    self->advance(50 * kUs);
    self->scheduler().wake_at(sleeper, self->now() + 10 * kUs);
  });
  sched.run();
  EXPECT_EQ(woke, 60 * kUs);
}

TEST(Scheduler, DeadlockDetected) {
  Scheduler sched;
  sched.spawn("stuck", [&] { SimProcess::current()->block(); });
  EXPECT_THROW(sched.run(), DeadlockError);
}

TEST(Scheduler, ExceptionInProcessPropagates) {
  Scheduler sched;
  sched.spawn("boom", [] { throw std::runtime_error("bang"); });
  sched.spawn("bystander", [] {
    // Would run forever if not aborted by the scheduler's shutdown.
    SimProcess::current()->block();
  });
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST(Scheduler, AbortUnwindsBystanderStack) {
  // Destructors on the bystander's stack must run during shutdown.
  std::atomic<bool> destroyed{false};
  struct Sentinel {
    std::atomic<bool>* flag;
    ~Sentinel() { flag->store(true); }
  };
  {
    Scheduler sched;
    // Spawned first so it is dispatched first and is mid-execution (holding
    // a live Sentinel) when the other process throws.
    sched.spawn("bystander", [&] {
      Sentinel s{&destroyed};
      SimProcess::current()->block();
    });
    sched.spawn("boom", [] {
      SimProcess::current()->advance(10 * kUs);
      throw std::runtime_error("bang");
    });
    EXPECT_THROW(sched.run(), std::runtime_error);
  }
  EXPECT_TRUE(destroyed.load());
}

TEST(Scheduler, WakeTimersClampRunningHorizon) {
  // A process that schedules a wake for a blocked peer must not advance its
  // own clock past the wake time in the same dispatch without giving the
  // peer a chance to act.
  Scheduler sched;
  std::vector<std::pair<std::string, Time>> order;
  SimProcess* blocked_ptr = nullptr;
  sched.spawn("blocked", [&] {
    blocked_ptr = SimProcess::current();
    blocked_ptr->block();
    order.emplace_back("blocked-woke", blocked_ptr->now());
  });
  sched.spawn("runner", [&] {
    auto* self = SimProcess::current();
    self->advance(10 * kUs);  // let "blocked" get into its block() first
    self->scheduler().wake_at(*blocked_ptr, self->now() + 5 * kUs);
    self->advance(100 * kUs);
    order.emplace_back("runner-done", self->now());
  });
  sched.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].first, "blocked-woke");
  EXPECT_EQ(order[0].second, 15 * kUs);
  EXPECT_EQ(order[1].second, 110 * kUs);
}

TEST(Scheduler, PingPongLatencyArithmetic) {
  // Two processes exchanging wakes emulate a message round trip; total time
  // must be the exact sum of latencies.
  Scheduler sched;
  constexpr Time lat = 55 * kUs;
  constexpr int rounds = 100;
  Time finish = -1;
  SimProcess* a_ptr = nullptr;
  SimProcess* b_ptr = nullptr;
  sched.spawn("a", [&] {
    a_ptr = SimProcess::current();
    for (int i = 0; i < rounds; ++i) {
      a_ptr->block();  // wait for b's wake
      a_ptr->scheduler().wake_at(*b_ptr, a_ptr->now() + lat);
    }
    finish = a_ptr->now();
  });
  sched.spawn("b", [&] {
    b_ptr = SimProcess::current();
    b_ptr->advance(kUs);  // make sure a is blocked
    for (int i = 0; i < rounds; ++i) {
      b_ptr->scheduler().wake_at(*a_ptr, b_ptr->now() + lat);
      if (i + 1 < rounds) b_ptr->block();
    }
  });
  sched.run();
  // a wakes at 1us + lat, then each subsequent round adds 2*lat except the
  // final wake which only adds one more lat on a's side.
  EXPECT_EQ(finish, kUs + lat + (rounds - 1) * 2 * lat);
}

TEST(Topology, PartitionsAssignContiguously) {
  auto topo = Topology::two_partitions(16, 8);
  EXPECT_EQ(topo.size(), 24u);
  EXPECT_EQ(topo.partition_count(), 2);
  EXPECT_TRUE(topo.same_partition(0, 15));
  EXPECT_TRUE(topo.same_partition(16, 23));
  EXPECT_FALSE(topo.same_partition(15, 16));
  EXPECT_THROW(topo.partition_of(24), nexus::util::UsageError);
}

TEST(Topology, ArbitrarySizes) {
  auto topo = Topology::partitions({2, 3, 1});
  EXPECT_EQ(topo.size(), 6u);
  EXPECT_EQ(topo.partition_of(0), 0);
  EXPECT_EQ(topo.partition_of(2), 1);
  EXPECT_EQ(topo.partition_of(4), 1);
  EXPECT_EQ(topo.partition_of(5), 2);
  EXPECT_EQ(topo.partition_count(), 3);
}

TEST(TransferTime, MatchesBandwidthMath) {
  // 8 MB/s -> 1 MB takes 125 ms.
  EXPECT_EQ(transfer_time(1'000'000, 8.0), 125 * kMs);
  // 36 MB/s -> 36 bytes take 1 us.
  EXPECT_EQ(transfer_time(36, 36.0), 1 * kUs);
  EXPECT_EQ(transfer_time(0, 8.0), 0);
  // Rounds up to whole nanoseconds.
  EXPECT_EQ(transfer_time(1, 8.0), 125);
}

}  // namespace
