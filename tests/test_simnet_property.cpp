// Property tests of the discrete-event substrate under randomized
// workloads: causality, delivery accounting, and determinism.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "simnet/mailbox.hpp"
#include "simnet/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace nexus::simnet;
using nexus::util::Rng;

struct Stamped {
  std::uint32_t from;
  Time sent;
};

struct TraceLine {
  std::uint32_t at;
  std::uint32_t from;
  Time sent;
  Time received;
};

/// N processes randomly compute, send stamped messages to random peers,
/// and drain their mailboxes.  Returns the full receive trace.
std::vector<TraceLine> random_workload(std::uint64_t seed, int n_procs,
                                       int sends_per_proc, Time latency) {
  Scheduler sched;
  std::vector<std::unique_ptr<Mailbox<Stamped>>> boxes(
      static_cast<std::size_t>(n_procs));
  std::vector<TraceLine> trace;
  std::vector<SimProcess*> procs;
  int senders_done = 0;

  for (int p = 0; p < n_procs; ++p) {
    procs.push_back(&sched.spawn(
        "p" + std::to_string(p), [&, p] {
          auto* self = SimProcess::current();
          auto& my_box = *boxes[static_cast<std::size_t>(p)];
          auto drain = [&] {
            while (auto m = my_box.poll(self->now())) {
              trace.push_back(TraceLine{static_cast<std::uint32_t>(p),
                                        m->from, m->sent, self->now()});
            }
          };
          Rng rng(seed * 1000003 + static_cast<std::uint64_t>(p));
          for (int sent = 0; sent < sends_per_proc; ++sent) {
            self->advance(static_cast<Time>(rng.next_below(300)) * kUs);
            const auto to =
                static_cast<std::uint32_t>(rng.next_below(n_procs));
            boxes[to]->post(self->now() + latency,
                            Stamped{static_cast<std::uint32_t>(p),
                                    self->now()});
            drain();
          }
          ++senders_done;
          // Keep pumping until every sender finished, then drain whatever
          // is still queued for us (every post to this box has happened by
          // then, so the earliest() walk is exhaustive).
          while (senders_done < n_procs) {
            self->advance(100 * kUs);
            drain();
          }
          while (auto t = my_box.earliest()) {
            self->advance_to(*t);
            drain();
          }
        }));
  }
  for (int p = 0; p < n_procs; ++p) {
    boxes[static_cast<std::size_t>(p)] =
        std::make_unique<Mailbox<Stamped>>(sched, *procs[p]);
  }
  sched.run();
  return trace;
}

class SimnetRandomWorkload : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimnetRandomWorkload, CausalityHolds) {
  const Time latency = 500 * kUs;
  auto trace = random_workload(GetParam(), 6, 25, latency);
  for (const auto& line : trace) {
    // No message is observed before it was sent plus the link latency.
    EXPECT_GE(line.received, line.sent + latency);
  }
}

TEST_P(SimnetRandomWorkload, AllMessagesDelivered) {
  auto trace = random_workload(GetParam(), 6, 25, 500 * kUs);
  // 6 processes x 25 sends each; the final drain must catch everything.
  EXPECT_EQ(trace.size(), 150u);
}

TEST_P(SimnetRandomWorkload, DeterministicAcrossRuns) {
  auto a = random_workload(GetParam(), 5, 20, 300 * kUs);
  auto b = random_workload(GetParam(), 5, 20, 300 * kUs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].sent, b[i].sent);
    EXPECT_EQ(a[i].received, b[i].received);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimnetRandomWorkload,
                         ::testing::Values(1u, 2u, 9u, 77u));

TEST(SimnetProperty, PerSenderFifoWithEqualLatency) {
  // With a constant latency, messages from one sender to one receiver are
  // observed in send order.
  Scheduler sched;
  std::unique_ptr<Mailbox<int>> box;
  std::vector<int> order;
  auto& receiver = sched.spawn("rx", [&] {
    auto* self = SimProcess::current();
    int got = 0;
    while (got < 50) {
      if (auto m = box->poll(self->now())) {
        order.push_back(*m);
        ++got;
        continue;
      }
      if (auto t = box->earliest()) {
        self->advance_to(*t);
      } else {
        self->block();
      }
    }
  });
  sched.spawn("tx", [&] {
    auto* self = SimProcess::current();
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
      self->advance(static_cast<Time>(rng.next_below(200)) * kUs);
      box->post(self->now() + 2 * kMs, i);
    }
  });
  box = std::make_unique<Mailbox<int>>(sched, receiver);
  sched.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimnetProperty, TieWindowBoundsOverrun) {
  // Two processes computing in lockstep at equal clocks must interleave
  // with bounded leapfrogging, and both make full progress.
  Scheduler sched;
  sched.set_tie_window(100 * kUs);
  Time end_a = 0, end_b = 0;
  sched.spawn("a", [&] {
    auto* self = SimProcess::current();
    for (int i = 0; i < 100; ++i) self->advance(1 * kMs);
    end_a = self->now();
  });
  sched.spawn("b", [&] {
    auto* self = SimProcess::current();
    for (int i = 0; i < 100; ++i) self->advance(1 * kMs);
    end_b = self->now();
  });
  sched.run();
  EXPECT_EQ(end_a, 100 * kMs);
  EXPECT_EQ(end_b, 100 * kMs);
}

TEST(SimnetProperty, SpinnerCannotStarveRunnablePeer) {
  // Regression for the tie-window livelock: a process that spins while an
  // equal-clock peer is runnable must still let the peer execute.
  Scheduler sched;
  bool peer_ran = false;
  sched.spawn("spinner", [&] {
    auto* self = SimProcess::current();
    while (!peer_ran) self->advance(10 * kUs);
  });
  sched.spawn("peer", [&] {
    SimProcess::current()->advance(5 * kUs);
    peer_ran = true;
  });
  sched.run();
  EXPECT_TRUE(peer_ran);
}

}  // namespace
