// Startpoint semantics: copying, serialization, link mirroring, and the
// global-name property (paper §2.2).
#include <gtest/gtest.h>

#include "nexus/runtime.hpp"

namespace {

using namespace nexus;

RuntimeOptions base(std::size_t n) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(n);
  opts.modules = {"local", "mpl", "tcp"};
  return opts;
}

TEST(Startpoint, DefaultIsUnbound) {
  Startpoint sp;
  EXPECT_FALSE(sp.bound());
  EXPECT_EQ(sp.link_count(), 0u);
  EXPECT_FALSE(sp.forced_method().has_value());
}

TEST(Startpoint, CopyWithinContextSharesConnection) {
  Runtime rt(base(2));
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("noop",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           ++done;
                         });
    if (ctx.id() != 1) {
      ctx.wait_count(done, 2);
      return;
    }
    Startpoint a = ctx.world_startpoint(0);
    ctx.rsr(a, "noop");
    Startpoint b = a;  // plain C++ copy within the context
    ctx.rsr(b, "noop");
    EXPECT_EQ(a.link(0).conn.get(), b.link(0).conn.get());
    EXPECT_EQ(b.selected_method(), "mpl");
  });
}

TEST(Startpoint, SerializationStripsConnectionState) {
  Runtime rt(base(2));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) {
      std::uint64_t done = 0;
      ctx.register_handler("noop",
                           [&](Context&, Endpoint&, util::UnpackBuffer&) {
                             ++done;
                           });
      ctx.wait_count(done, 1);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    ctx.rsr(sp, "noop");
    ASSERT_NE(sp.link(0).conn, nullptr);

    util::PackBuffer pb;
    ctx.pack_startpoint(pb, sp);
    util::UnpackBuffer ub(pb.bytes());
    Startpoint again = ctx.unpack_startpoint(ub);
    EXPECT_EQ(again.link(0).conn, nullptr);        // local state gone
    EXPECT_TRUE(again.selected_method().empty());  // must reselect
    EXPECT_EQ(again.link(0).context, sp.link(0).context);
    EXPECT_EQ(again.link(0).endpoint, sp.link(0).endpoint);
    EXPECT_EQ(again.table(), sp.table());
  });
}

TEST(Startpoint, MultiLinkSerializationMirrorsAllLinks) {
  // "When a startpoint is copied, new communication links are created,
  // mirroring the links associated with the original startpoint" (§2.2).
  Runtime rt(base(4));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 0) return;
    Startpoint multi;
    for (ContextId t = 1; t <= 3; ++t) {
      Startpoint one = ctx.world_startpoint(t);
      multi.links().push_back(one.link(0));
    }
    util::PackBuffer pb;
    ctx.pack_startpoint(pb, multi);
    util::UnpackBuffer ub(pb.bytes());
    Startpoint copy = ctx.unpack_startpoint(ub);
    ASSERT_EQ(copy.link_count(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(copy.link(i).context, multi.link(i).context);
      EXPECT_EQ(copy.link(i).endpoint, multi.link(i).endpoint);
    }
  });
}

TEST(Startpoint, ActsAsGlobalNameThroughChainOfContexts) {
  // A startpoint created at ctx0 is forwarded 0 -> 1 -> 2 -> 3 and still
  // names the same endpoint when finally used.
  Runtime rt(base(4));
  std::string touched;
  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      std::uint64_t done = 0;
      Endpoint& ep = ctx.create_endpoint();
      ep.set_local_address(std::string("the-named-object"));
      ctx.register_handler("touch",
                           [&](Context&, Endpoint& e, util::UnpackBuffer&) {
                             touched = *e.local_as<std::string>();
                             ++done;
                           });
      Startpoint name = ctx.startpoint_to(ep);
      util::PackBuffer pb;
      ctx.pack_startpoint(pb, name);
      Startpoint to1 = ctx.world_startpoint(1);
      ctx.rsr(to1, "pass", pb);
      ctx.wait_count(done, 1);
      return;
    }
    std::uint64_t acted = 0;
    ctx.register_handler(
        "pass", [&](Context& c, Endpoint&, util::UnpackBuffer& ub) {
          Startpoint sp = c.unpack_startpoint(ub);
          if (c.id() < 3) {
            util::PackBuffer pb;
            c.pack_startpoint(pb, sp);
            Startpoint next = c.world_startpoint(c.id() + 1);
            c.rsr(next, "pass", pb);
          } else {
            c.rsr(sp, "touch");  // finally use the global name
          }
          ++acted;
        });
    ctx.wait_count(acted, 1);
  });
  EXPECT_EQ(touched, "the-named-object");
}

TEST(Startpoint, ReceiverCanChangeMethodOfReceivedStartpoint) {
  // §2.2: "a process receiving a startpoint can change the communication
  // method to be used."
  Runtime rt(base(2));
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("noop",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           ++done;
                         });
    if (ctx.id() != 1) {
      ctx.wait_count(done, 1);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);  // table prefers mpl
    sp.table().prioritize("tcp");             // receiver-side preference
    sp.invalidate_selection();
    ctx.rsr(sp, "noop");
    EXPECT_EQ(sp.selected_method(), "tcp");
  });
}

TEST(Startpoint, LiveLinkReorderNeedsInvalidationToTakeEffect) {
  // Manual table control on a live (already-connected) link: a bulk
  // reorder() alone leaves the cached connection in place; the edit takes
  // effect at the next RSR after invalidate_selection() evicts it.
  Runtime rt(base(2));
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("noop",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           ++done;
                         });
    if (ctx.id() != 1) {
      ctx.wait_count(done, 3);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    ctx.rsr(sp, "noop");
    ASSERT_EQ(sp.selected_method(), "mpl");
    ASSERT_NE(sp.link(0).conn, nullptr);

    // Move tcp to the front: [local, mpl, tcp] -> [tcp, local, mpl].
    auto tcp_pos = sp.table().find("tcp");
    ASSERT_TRUE(tcp_pos.has_value());
    std::vector<std::size_t> perm{*tcp_pos};
    for (std::size_t i = 0; i < sp.table().size(); ++i) {
      if (i != *tcp_pos) perm.push_back(i);
    }
    sp.table().reorder(perm);

    // Still connected: the established method keeps carrying traffic.
    ctx.rsr(sp, "noop");
    EXPECT_EQ(sp.selected_method(), "mpl");

    sp.invalidate_selection();
    EXPECT_EQ(sp.link(0).conn, nullptr);  // eviction is immediate
    ctx.rsr(sp, "noop");
    EXPECT_EQ(sp.selected_method(), "tcp");
  });
}

TEST(Startpoint, LiveLinkDeleteOfSelectedMethodFallsBack) {
  Runtime rt(base(2));
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("noop",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           ++done;
                         });
    if (ctx.id() != 1) {
      ctx.wait_count(done, 2);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    ctx.rsr(sp, "noop");
    ASSERT_EQ(sp.selected_method(), "mpl");
    EXPECT_EQ(sp.table().remove("mpl"), 1u);
    sp.invalidate_selection();
    ctx.rsr(sp, "noop");
    EXPECT_EQ(sp.selected_method(), "tcp");  // next applicable entry
  });
}

TEST(Startpoint, LiveLinkAddRestoresAFasterMethod) {
  Runtime rt(base(2));
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("noop",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           ++done;
                         });
    if (ctx.id() != 1) {
      ctx.wait_count(done, 2);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    const DescriptorTable full = sp.table();  // keep a copy to re-add from
    auto mpl_pos = full.find("mpl");
    ASSERT_TRUE(mpl_pos.has_value());
    sp.table().remove("mpl");
    ctx.rsr(sp, "noop");
    ASSERT_EQ(sp.selected_method(), "tcp");

    // Add the faster descriptor back at top priority on the live link.
    sp.table().insert(0, full.at(*mpl_pos));
    sp.invalidate_selection();
    ctx.rsr(sp, "noop");
    EXPECT_EQ(sp.selected_method(), "mpl");
  });
}

TEST(Startpoint, SenderPreferenceTravelsViaTableOrder) {
  // The sender reorders the table before shipping the startpoint; the
  // receiver's first-applicable scan then honours the sender's choice.
  Runtime rt(base(3));
  std::string method_at_receiver;
  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      std::uint64_t done = 0;
      ctx.register_handler("noop",
                           [&](Context&, Endpoint&, util::UnpackBuffer&) {
                             ++done;
                           });
      Startpoint mine = ctx.startpoint_to(ctx.root_endpoint());
      mine.table(0).prioritize("tcp");  // sender-side requirement
      util::PackBuffer pb;
      ctx.pack_startpoint(pb, mine);
      Startpoint to2 = ctx.world_startpoint(2);
      ctx.rsr(to2, "take", pb);
      ctx.wait_count(done, 1);
    } else if (ctx.id() == 2) {
      std::uint64_t done = 0;
      ctx.register_handler(
          "take", [&](Context& c, Endpoint&, util::UnpackBuffer& ub) {
            Startpoint sp = c.unpack_startpoint(ub);
            c.rsr(sp, "noop");
            method_at_receiver = sp.selected_method();
            ++done;
          });
      ctx.wait_count(done, 1);
    }
  });
  EXPECT_EQ(method_at_receiver, "tcp");
}

TEST(Startpoint, ForcedMethodIsLocalNotSerialized) {
  Runtime rt(base(2));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 0) return;
    Startpoint sp = ctx.world_startpoint(1);
    sp.force_method("tcp");
    util::PackBuffer pb;
    ctx.pack_startpoint(pb, sp);
    util::UnpackBuffer ub(pb.bytes());
    Startpoint again = ctx.unpack_startpoint(ub);
    EXPECT_FALSE(again.forced_method().has_value());
  });
}

TEST(Startpoint, BindRejectsRemoteEndpointIllusion) {
  Runtime rt(base(2));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 0) return;
    // Construct a link list by hand is fine, but bind() itself must only
    // accept local endpoints: fake it by asking ctx1's runtime table.
    Startpoint sp;
    Endpoint& mine = ctx.create_endpoint();
    ctx.bind(sp, mine);
    EXPECT_EQ(sp.link_count(), 1u);
    EXPECT_EQ(sp.link(0).context, 0u);
  });
}

TEST(Startpoint, MergingSemanticsMultipleStartpointsOneEndpoint) {
  // §2.2: several startpoints bound to one endpoint merge their traffic.
  Runtime rt(base(3));
  int arrivals = 0;
  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      std::uint64_t done = 0;
      ctx.register_handler("merge",
                           [&](Context&, Endpoint&, util::UnpackBuffer&) {
                             ++arrivals;
                             ++done;
                           });
      ctx.wait_count(done, 2);
      EXPECT_EQ(ctx.root_endpoint().deliveries(), 2u);
    } else {
      Startpoint sp = ctx.world_startpoint(0);
      ctx.rsr(sp, "merge");
    }
  });
  EXPECT_EQ(arrivals, 2);
}

}  // namespace
