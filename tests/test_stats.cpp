// Unit tests for streaming statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/stats.hpp"

namespace {

using nexus::util::RunningStats;
using nexus::util::SampleSet;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsBulk) {
  RunningStats a, b, bulk;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    bulk.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-9);
  EXPECT_EQ(a.min(), bulk.min());
  EXPECT_EQ(a.max(), bulk.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, PercentilesExactOnSortedData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
}

TEST(SampleSet, AddAfterPercentileStillWorks) {
  SampleSet s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_EQ(s.min(), 1.0);
  s.add(0.5);  // invalidates sort
  EXPECT_EQ(s.min(), 0.5);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(SampleSet, EmptyPercentileThrows) {
  SampleSet s;
  EXPECT_THROW(s.percentile(50), std::out_of_range);
  EXPECT_THROW(s.min(), std::out_of_range);
}

TEST(SampleSet, PercentileRejectsOutOfRangeP) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-0.001), std::invalid_argument);
  EXPECT_THROW(s.percentile(100.001), std::invalid_argument);
  EXPECT_THROW(s.percentile(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  // The boundaries themselves are fine.
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 1.0);
}

TEST(SampleSet, SingleSampleReturnsItForEveryP) {
  SampleSet s;
  s.add(42.0);
  for (double p : {0.0, 12.5, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(s.percentile(p), 42.0) << "p=" << p;
  }
}

TEST(SampleSet, InterpolatesBetweenClosestRanks) {
  // rank = p/100 * (n-1); with samples {10, 20}, p=25 -> rank 0.25 -> 12.5.
  SampleSet s;
  s.add(20.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 12.5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(75), 17.5);
}

TEST(MethodCounters, MergeAccumulates) {
  nexus::util::MethodCounters a, b;
  a.sends = 3;
  a.bytes_sent = 100;
  b.sends = 2;
  b.polls = 7;
  a.merge(b);
  EXPECT_EQ(a.sends, 5u);
  EXPECT_EQ(a.bytes_sent, 100u);
  EXPECT_EQ(a.polls, 7u);
}

TEST(FmtFixed, Formats) {
  EXPECT_EQ(nexus::util::fmt_fixed(104.94, 1), "104.9");
  EXPECT_EQ(nexus::util::fmt_fixed(0.5, 3), "0.500");
}

}  // namespace
