// Unit tests for streaming statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/stats.hpp"

namespace {

using nexus::util::DecayingEwma;
using nexus::util::RunningStats;
using nexus::util::SampleSet;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsBulk) {
  RunningStats a, b, bulk;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    bulk.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), bulk.count());
  EXPECT_NEAR(a.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), bulk.variance(), 1e-9);
  EXPECT_EQ(a.min(), bulk.min());
  EXPECT_EQ(a.max(), bulk.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, PercentilesExactOnSortedData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
}

TEST(SampleSet, AddAfterPercentileStillWorks) {
  SampleSet s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_EQ(s.min(), 1.0);
  s.add(0.5);  // invalidates sort
  EXPECT_EQ(s.min(), 0.5);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(SampleSet, EmptyPercentileThrows) {
  SampleSet s;
  EXPECT_THROW(s.percentile(50), std::out_of_range);
  EXPECT_THROW(s.min(), std::out_of_range);
}

TEST(SampleSet, PercentileRejectsOutOfRangeP) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-0.001), std::invalid_argument);
  EXPECT_THROW(s.percentile(100.001), std::invalid_argument);
  EXPECT_THROW(s.percentile(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  // The boundaries themselves are fine.
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 1.0);
}

TEST(SampleSet, SingleSampleReturnsItForEveryP) {
  SampleSet s;
  s.add(42.0);
  for (double p : {0.0, 12.5, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(s.percentile(p), 42.0) << "p=" << p;
  }
}

TEST(SampleSet, InterpolatesBetweenClosestRanks) {
  // rank = p/100 * (n-1); with samples {10, 20}, p=25 -> rank 0.25 -> 12.5.
  SampleSet s;
  s.add(20.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 12.5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(75), 17.5);
}

TEST(DecayingEwma, EmptyHasNoConfidence) {
  DecayingEwma e(0.25, 100.0);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.count(), 0u);
  EXPECT_EQ(e.value(), 0.0);
  EXPECT_EQ(e.confidence(1e9), 0.0);
}

TEST(DecayingEwma, FirstSampleSeedsMeanExactly) {
  DecayingEwma e(0.25, 0.0);
  e.add(42.0, 10.0);
  EXPECT_FALSE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
  EXPECT_DOUBLE_EQ(e.last_update(), 10.0);
}

TEST(DecayingEwma, WarmUpConfidenceGrowsWithSamples) {
  // weight after n samples is 1 - (1 - alpha)^n: monotone toward 1.
  DecayingEwma e(0.25, 0.0);  // half_life 0 = no staleness decay
  double prev = 0.0;
  for (int n = 1; n <= 20; ++n) {
    e.add(5.0, static_cast<double>(n));
    const double c = e.confidence(static_cast<double>(n));
    EXPECT_GT(c, prev) << "n=" << n;
    EXPECT_NEAR(c, 1.0 - std::pow(0.75, n), 1e-12);
    prev = c;
  }
  EXPECT_GT(prev, 0.99);
}

TEST(DecayingEwma, StepResponseConvergesToNewLevel) {
  DecayingEwma e(0.25, 0.0);
  double t = 0.0;
  for (int i = 0; i < 10; ++i) e.add(100.0, t += 1.0);
  EXPECT_NEAR(e.value(), 100.0, 10.0);
  // Step the input; the estimate must move most of the way within ~16
  // samples ((1-0.25)^16 ~ 1%) and never overshoot.
  for (int i = 0; i < 16; ++i) {
    e.add(200.0, t += 1.0);
    EXPECT_LE(e.value(), 200.0);
  }
  EXPECT_NEAR(e.value(), 200.0, 2.5);
}

TEST(DecayingEwma, ConfidenceHalvesPerHalfLifeOfSilence) {
  DecayingEwma e(0.5, 100.0);
  for (int i = 0; i < 30; ++i) e.add(7.0, 0.0);
  const double at0 = e.confidence(0.0);
  EXPECT_NEAR(at0, 1.0, 1e-6);
  EXPECT_NEAR(e.confidence(100.0), at0 / 2.0, 1e-9);
  EXPECT_NEAR(e.confidence(200.0), at0 / 4.0, 1e-9);
  EXPECT_LT(e.confidence(1000.0), 0.001);
  // Decay is staleness only: the value itself is untouched.
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
  // Asking about the past (clock skew) clamps to "fresh", never amplifies.
  EXPECT_DOUBLE_EQ(e.confidence(-50.0), at0);
}

TEST(DecayingEwma, FreshSampleRestoresConfidence) {
  DecayingEwma e(0.5, 100.0);
  for (int i = 0; i < 10; ++i) e.add(7.0, 0.0);
  ASSERT_LT(e.confidence(500.0), 0.05);
  e.add(9.0, 500.0);
  EXPECT_GT(e.confidence(500.0), 0.5);
  EXPECT_DOUBLE_EQ(e.last_update(), 500.0);
}

TEST(DecayingEwma, ResetClearsSamplesButKeepsParameters) {
  DecayingEwma e(0.5, 100.0);
  e.add(3.0, 1.0);
  e.reset();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.confidence(1.0), 0.0);
  e.add(8.0, 2.0);
  EXPECT_DOUBLE_EQ(e.value(), 8.0);
  EXPECT_NEAR(e.confidence(102.0), 0.25, 1e-9);  // alpha 0.5 halved once
}

TEST(MethodCounters, MergeAccumulates) {
  nexus::util::MethodCounters a, b;
  a.sends = 3;
  a.bytes_sent = 100;
  b.sends = 2;
  b.polls = 7;
  a.merge(b);
  EXPECT_EQ(a.sends, 5u);
  EXPECT_EQ(a.bytes_sent, 100u);
  EXPECT_EQ(a.polls, 7u);
}

TEST(FmtFixed, Formats) {
  EXPECT_EQ(nexus::util::fmt_fixed(104.94, 1), "104.9");
  EXPECT_EQ(nexus::util::fmt_fixed(0.5, 3), "0.500");
}

}  // namespace
