// Tests for the streaming method (paper §6 future work): fragmentation,
// reassembly, interleaving, and cost behaviour.
#include <gtest/gtest.h>

#include "nexus/runtime.hpp"
#include "proto/stream.hpp"
#include "util/rng.hpp"

namespace {

using namespace nexus;

RuntimeOptions stream_opts(std::size_t n, std::int64_t mtu = 0) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(n - 1, 1);
  opts.modules = {"local", "mpl", "stream", "tcp"};
  if (mtu > 0) opts.db.set("stream.mtu", std::to_string(mtu));
  return opts;
}

proto::StreamSimModule* stream_of(Context& ctx) {
  return dynamic_cast<proto::StreamSimModule*>(ctx.module("stream"));
}

TEST(Stream, LargePayloadRoundtripIntact) {
  Runtime rt(stream_opts(2, 1024));
  util::Bytes got;
  util::Bytes original(100'000, 0);
  util::Rng rng(11);
  for (auto& b : original) b = static_cast<std::uint8_t>(rng.next());

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("blob",
                             [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                               got = ub.get_bytes();
                               ++done;
                             });
        ctx.wait_count(done, 1);
        // ~100000/1024 fragments plus the length-prefixed framing.
        EXPECT_GE(stream_of(ctx)->fragments_received(), 98u);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        sp.force_method("stream");
        util::PackBuffer pb;
        pb.put_bytes(original);
        ctx.rsr(sp, "blob", pb);
        EXPECT_GE(stream_of(ctx)->fragments_sent(), 98u);
      }});
  EXPECT_EQ(got, original);
}

TEST(Stream, EmptyPayloadStillDelivers) {
  Runtime rt(stream_opts(2));
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("empty",
                             [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                               EXPECT_TRUE(ub.empty());
                               ++done;
                             });
        ctx.wait_count(done, 1);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        sp.force_method("stream");
        ctx.rsr(sp, "empty");
        EXPECT_EQ(stream_of(ctx)->fragments_sent(), 1u);
      }});
}

TEST(Stream, SmallPayloadSingleFragment) {
  Runtime rt(stream_opts(2, 4096));
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("small",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++done;
                             });
        ctx.wait_count(done, 1);
        EXPECT_EQ(stream_of(ctx)->fragments_received(), 1u);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        sp.force_method("stream");
        ctx.rsr(sp, "small", util::Bytes(100, 0x1));
      }});
}

TEST(Stream, InterleavedSendersReassembleIndependently) {
  // Two senders stream different large payloads to one receiver; the
  // fragments interleave in the receiver's mailbox but each message must
  // come out whole and correct.
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(3);
  opts.modules = {"local", "stream", "tcp"};
  opts.db.set("stream.mtu", "512");
  Runtime rt(opts);
  std::map<int, util::Bytes> received;

  auto payload_of = [](int sender) {
    return util::Bytes(20'000 + 1000 * static_cast<std::size_t>(sender),
                       static_cast<std::uint8_t>(0x10 * sender));
  };

  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      std::uint64_t done = 0;
      ctx.register_handler("blob",
                           [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                             const int sender = ub.get_i32();
                             received[sender] = ub.get_bytes();
                             ++done;
                           });
      ctx.wait_count(done, 2);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    sp.force_method("stream");
    util::PackBuffer pb;
    pb.put_i32(static_cast<int>(ctx.id()));
    pb.put_bytes(payload_of(static_cast<int>(ctx.id())));
    ctx.rsr(sp, "blob", pb);
  });

  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[1], payload_of(1));
  EXPECT_EQ(received[2], payload_of(2));
}

TEST(Stream, BackToBackMessagesFromOneSenderStayOrdered) {
  Runtime rt(stream_opts(2, 256));
  std::vector<int> order;
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("seq",
                             [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                               order.push_back(ub.get_i32());
                               ++done;
                             });
        ctx.wait_count(done, 5);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        sp.force_method("stream");
        for (int i = 0; i < 5; ++i) {
          util::PackBuffer pb;
          pb.put_i32(i);
          pb.put_bytes(util::Bytes(3000, static_cast<std::uint8_t>(i)));
          ctx.rsr(sp, "seq", pb);
        }
      }});
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Stream, TransferTimeScalesWithFragmentPipeline) {
  // A fragmented transfer must take at least the serialized wire time of
  // all fragments plus one latency (pipelined, not per-fragment latency).
  Runtime rt(stream_opts(2, 1024));
  Time delivered = -1;
  const std::size_t kBytes = 81920;  // 80 fragments
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("blob",
                             [&](Context& c, Endpoint&, util::UnpackBuffer&) {
                               delivered = c.now();
                               ++done;
                             });
        ctx.wait_count(done, 1);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        sp.force_method("stream");
        ctx.rsr(sp, "blob", util::Bytes(kBytes, 0x9));
      }});
  RuntimeOptions ref;
  const Time min_wire =
      simnet::transfer_time(kBytes, ref.costs.tcp_mb_s) + ref.costs.tcp_latency;
  EXPECT_GE(delivered, min_wire);
  // And not absurdly slow: under 3x the ideal.
  EXPECT_LE(delivered, 3 * min_wire);
}

}  // namespace
