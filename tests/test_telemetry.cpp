// Observability subsystem: span tracer, metrics registry, Chrome trace
// export, and the selection-explanation enquiry.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "nexus/runtime.hpp"
#include "nexus/telemetry/export.hpp"
#include "nexus/telemetry/stitch.hpp"
#include "nexus/telemetry/telemetry.hpp"
#include "proto/sim_modules.hpp"

namespace {

using namespace nexus;
using telemetry::CandidateStatus;
using telemetry::Event;
using telemetry::Histogram;
using telemetry::Phase;
using telemetry::Tracer;

// --------------------------------------------------------------- helpers ---

/// Minimal structural JSON check: balanced containers, quotes terminated,
/// escapes legal.  Not a full parser, but catches truncation, stray commas
/// in container endings, and unescaped quotes.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
        if (i >= s.size()) return false;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

/// Split the top-level objects of a JSON array body (crude brace matcher;
/// good enough for the tracer's own output, which never nests strings with
/// braces).
std::vector<std::string> array_objects(const std::string& json,
                                       const std::string& array_key) {
  std::vector<std::string> out;
  const auto start = json.find("\"" + array_key + "\":[");
  if (start == std::string::npos) return out;
  std::size_t i = json.find('[', start) + 1;
  int depth = 0;
  std::size_t obj_start = 0;
  bool in_string = false;
  for (; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') {
      if (depth == 0) obj_start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) out.push_back(json.substr(obj_start, i - obj_start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return out;
}

/// Run a one-shot RSR from context 1 to context 0 over the simulated
/// fabric and return the runtime for inspection.
std::unique_ptr<Runtime> run_one_rsr(bool tracing, bool metrics = true) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  opts.tracing = tracing;
  opts.metrics = metrics;
  auto rt = std::make_unique<Runtime>(opts);
  rt->run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("ev", [&](Context& c, Endpoint&,
                                   util::UnpackBuffer&) {
      c.compute(500);  // give the handler measurable (virtual) duration
      ++done;
    });
    if (ctx.id() == 1) {
      Startpoint sp = ctx.world_startpoint(0);
      ctx.rsr(sp, "ev");
    } else {
      ctx.wait_count(done, 1);
    }
  });
  return rt;
}

// ------------------------------------------------------------- histogram ---

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64);
  // floor/ceil are exactly the bucket edges, and both map back to i.
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_floor(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_ceil(i)), i);
  }
  // Adjacent buckets tile the value range with no gap or overlap.
  for (int i = 1; i < Histogram::kBuckets - 1; ++i) {
    EXPECT_EQ(Histogram::bucket_ceil(i) + 1, Histogram::bucket_floor(i + 1));
  }
}

TEST(Histogram, AddCountsAndPercentiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);  // empty: defined as 0
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  // Log-bucketed: p50 is approximate, but must stay within the bucket
  // holding the true median.
  EXPECT_GE(h.percentile(50), 32.0);
  EXPECT_LE(h.percentile(50), 64.0);
  // Zero lands in its own bucket.
  Histogram z;
  z.add(0);
  EXPECT_EQ(z.bucket_count(0), 1u);
  EXPECT_DOUBLE_EQ(z.percentile(50), 0.0);
}

TEST(Histogram, MergeAccumulates) {
  Histogram a, b;
  a.add(10);
  b.add(1000);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.sum(), 1013u);
}

// ---------------------------------------------------------------- tracer ---

TEST(TracerUnit, DisabledByDefault) {
  Tracer tr;
  EXPECT_FALSE(tr.enabled());
  tr.record_custom(1, 0, "marker");  // no-ops while disabled
  EXPECT_EQ(tr.recorded(), 0u);
}

TEST(TracerUnit, RingIsBoundedAndCountsDrops) {
  Tracer tr(8);
  tr.enable();
  for (std::uint64_t i = 0; i < 20; ++i) {
    tr.record(Event{static_cast<telemetry::Time>(i), i + 1, 0, Phase::Custom,
                    0, 0, 0});
  }
  EXPECT_EQ(tr.recorded(), 20u);
  EXPECT_EQ(tr.dropped(), 12u);
  const auto evs = tr.events();
  ASSERT_EQ(evs.size(), 8u);
  // Oldest events were overwritten; the snapshot is the newest 8, in order.
  EXPECT_EQ(evs.front().span, 13u);
  EXPECT_EQ(evs.back().span, 20u);
  tr.clear();
  EXPECT_EQ(tr.recorded(), 0u);
  EXPECT_TRUE(tr.events().empty());
}

TEST(TracerUnit, InternReturnsStableIds) {
  Tracer tr;
  const auto a = tr.intern("mpl");
  const auto b = tr.intern("tcp");
  EXPECT_NE(a, b);
  EXPECT_EQ(tr.intern("mpl"), a);
  EXPECT_EQ(tr.label_name(a), "mpl");
  EXPECT_EQ(tr.label_name(b), "tcp");
  EXPECT_EQ(tr.label_name(999), "?");
}

// ------------------------------------------------- runtime instrumentation ---

TEST(Telemetry, SpanLinksSendAndDispatchAcrossContexts) {
  auto rt = run_one_rsr(/*tracing=*/true);
  const auto evs = rt->telemetry().tracer().events();
  const Event* send = nullptr;
  const Event* dispatch = nullptr;
  const Event* enqueue = nullptr;
  const Event* poll_hit = nullptr;
  const Event* handler_done = nullptr;
  for (const Event& ev : evs) {
    if (ev.phase == Phase::Send) send = &ev;
    if (ev.phase == Phase::Dispatch) dispatch = &ev;
    if (ev.phase == Phase::Enqueue) enqueue = &ev;
    if (ev.phase == Phase::PollHit) poll_hit = &ev;
    if (ev.phase == Phase::HandlerDone) handler_done = &ev;
  }
  ASSERT_NE(send, nullptr);
  ASSERT_NE(dispatch, nullptr);
  ASSERT_NE(enqueue, nullptr);
  ASSERT_NE(poll_hit, nullptr);
  ASSERT_NE(handler_done, nullptr);
  // One span ties the whole lifecycle together, across two contexts.
  EXPECT_NE(send->span, 0u);
  EXPECT_EQ(send->context, 1u);
  EXPECT_EQ(dispatch->context, 0u);
  EXPECT_EQ(send->span, dispatch->span);
  EXPECT_EQ(send->span, enqueue->span);
  EXPECT_EQ(send->span, poll_hit->span);
  EXPECT_EQ(send->span, handler_done->span);
  EXPECT_GE(dispatch->when, send->when);
  // The send names the method; the dispatch names the handler.
  EXPECT_EQ(rt->telemetry().tracer().label_name(send->label), "mpl");
  EXPECT_EQ(rt->telemetry().tracer().label_name(dispatch->label), "ev");
  // The text timeline renders every phase.
  const std::string timeline = rt->telemetry().tracer().text_timeline();
  EXPECT_NE(timeline.find("send mpl"), std::string::npos);
  EXPECT_NE(timeline.find("dispatch ev"), std::string::npos);
}

TEST(Telemetry, TracingOffByDefaultRecordsNothing) {
  auto rt = run_one_rsr(/*tracing=*/false);
  EXPECT_EQ(rt->telemetry().tracer().recorded(), 0u);
  // Counters still run: they are the seed's enquiry data.
  const auto snap = rt->telemetry().metrics().snapshot();
  const auto* mpl = snap.find_method(1, "mpl");
  ASSERT_NE(mpl, nullptr);
  EXPECT_GE(mpl->counters.sends, 1u);
}

TEST(Telemetry, ChromeTraceFileLinksOneRsrAcrossTwoContexts) {
  auto rt = run_one_rsr(/*tracing=*/true);
  const std::string path = testing::TempDir() + "nexus_trace.json";
  rt->write_chrome_trace(path);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(path.c_str());

  ASSERT_TRUE(json_well_formed(json));
  ASSERT_NE(json.find("\"traceEvents\":["), std::string::npos);

  const auto objects = array_objects(json, "traceEvents");
  ASSERT_FALSE(objects.empty());
  // The RSR's span becomes an async begin on the sending context and an
  // async end on the receiving context, matched by the same id.
  std::string begin_id, end_id;
  for (const std::string& obj : objects) {
    const bool is_begin = obj.find("\"ph\":\"b\"") != std::string::npos;
    const bool is_end = obj.find("\"ph\":\"e\"") != std::string::npos;
    if (!is_begin && !is_end) continue;
    const auto id_pos = obj.find("\"id\":");
    ASSERT_NE(id_pos, std::string::npos);
    const auto id_end = obj.find(',', id_pos);
    const std::string id = obj.substr(id_pos + 5, id_end - id_pos - 5);
    if (is_begin) {
      begin_id = id;
      EXPECT_NE(obj.find("\"pid\":1"), std::string::npos);  // sender
      EXPECT_NE(obj.find("\"cat\":\"rsr\""), std::string::npos);
    } else {
      end_id = id;
      EXPECT_NE(obj.find("\"pid\":0"), std::string::npos);  // receiver
      EXPECT_NE(obj.find("\"cat\":\"rsr\""), std::string::npos);
    }
  }
  ASSERT_FALSE(begin_id.empty());
  ASSERT_FALSE(end_id.empty());
  EXPECT_EQ(begin_id, end_id);
}

TEST(Telemetry, MetricsRegistryHistogramsAndJson) {
  auto rt = run_one_rsr(/*tracing=*/false);
  const auto snap = rt->telemetry().metrics().snapshot();

  const auto* mpl = snap.find_method(1, "mpl");
  ASSERT_NE(mpl, nullptr);
  EXPECT_GE(mpl->counters.sends, 1u);
  EXPECT_GE(mpl->send_bytes.count(), 1u);
  const auto* mpl_rx = snap.find_method(0, "mpl");
  ASSERT_NE(mpl_rx, nullptr);
  EXPECT_GE(mpl_rx->recv_bytes.count(), 1u);

  const auto* ctx0 = snap.find_context(0);
  ASSERT_NE(ctx0, nullptr);
  EXPECT_GE(ctx0->rsr_oneway_ns.count(), 1u);
  EXPECT_GT(ctx0->rsr_oneway_ns.max(), 0u);
  EXPECT_GE(ctx0->handler_ns.count(), 1u);
  EXPECT_GE(ctx0->handler_ns.max(), 500u);  // the handler computes 500 ns
  EXPECT_GE(ctx0->poll_batch.count(), 1u);

  const std::string json = rt->telemetry().metrics().to_json();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"method\":\"mpl\""), std::string::npos);
  const std::string text = rt->telemetry().metrics().to_text();
  EXPECT_NE(text.find("rsr_oneway_ns"), std::string::npos);

  // Disabling metrics suppresses histograms but not counters.
  auto rt2 = run_one_rsr(/*tracing=*/false, /*metrics=*/false);
  const auto snap2 = rt2->telemetry().metrics().snapshot();
  const auto* c2 = snap2.find_context(0);
  if (c2 != nullptr) {
    EXPECT_EQ(c2->rsr_oneway_ns.count(), 0u);
  }
  const auto* m2 = snap2.find_method(1, "mpl");
  ASSERT_NE(m2, nullptr);
  EXPECT_GE(m2->counters.sends, 1u);
  EXPECT_EQ(m2->send_bytes.count(), 0u);
}

TEST(Telemetry, PollIntervalsAreSampled) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl"};
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    // Plenty of iterations so the stride-16 sampler fires repeatedly.
    for (int i = 0; i < 20 * 16; ++i) ctx.progress();
  });
  const auto snap = rt.telemetry().metrics().snapshot();
  const auto* cm = snap.find_context(0);
  ASSERT_NE(cm, nullptr);
  EXPECT_GE(cm->poll_interval_ns.count(), 10u);
}

// ----------------------------------------------------- explain_selection ---

TEST(ExplainSelection, FastestFirstNamesWinnerAndRejections) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);
  telemetry::SelectionReport rep;
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    Startpoint sp = ctx.world_startpoint(0);
    rep = ctx.explain_selection(sp);
  });
  EXPECT_EQ(rep.selector, "first-applicable");
  ASSERT_EQ(rep.links.size(), 1u);
  const auto& link = rep.links[0];
  EXPECT_EQ(link.target, 0u);
  EXPECT_EQ(link.winner, "mpl");
  EXPECT_FALSE(link.forced);
  EXPECT_FALSE(link.forward_via.has_value());
  ASSERT_EQ(link.candidates.size(), 3u);  // fastest-first: local, mpl, tcp
  EXPECT_EQ(link.candidates[0].method, "local");
  EXPECT_EQ(link.candidates[0].status, CandidateStatus::NotApplicable);
  EXPECT_EQ(link.candidates[1].method, "mpl");
  EXPECT_EQ(link.candidates[1].status, CandidateStatus::Won);
  EXPECT_EQ(link.candidates[2].method, "tcp");
  EXPECT_EQ(link.candidates[2].status, CandidateStatus::RankedBehind);
  // Machine- and human-readable renderings agree on the winner.
  EXPECT_TRUE(json_well_formed(rep.to_json()));
  EXPECT_NE(rep.to_json().find("\"winner\":\"mpl\""), std::string::npos);
  EXPECT_NE(rep.to_text().find("mpl"), std::string::npos);
}

TEST(ExplainSelection, ForcedMethodOverridesThePolicy) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);
  telemetry::SelectionReport rep;
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    Startpoint sp = ctx.world_startpoint(0);
    sp.force_method("tcp");
    rep = ctx.explain_selection(sp);
  });
  ASSERT_EQ(rep.links.size(), 1u);
  const auto& link = rep.links[0];
  EXPECT_TRUE(link.forced);
  EXPECT_EQ(link.winner, "tcp");
  EXPECT_EQ(link.reason, "forced by application");
  for (const auto& c : link.candidates) {
    if (c.method == "tcp") {
      EXPECT_EQ(c.status, CandidateStatus::Won);
    } else {
      EXPECT_EQ(c.status, CandidateStatus::NotForced);
    }
  }
}

TEST(ExplainSelection, ForwardingRelayIsReported) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(2, 2);
  opts.forwarders[1] = 2;
  Runtime rt(opts);
  telemetry::SelectionReport rep;
  rt.run([&](Context& ctx) {
    if (ctx.id() != 0) return;
    Startpoint sp = ctx.world_startpoint(3);
    rep = ctx.explain_selection(sp);
  });
  ASSERT_EQ(rep.links.size(), 1u);
  const auto& link = rep.links[0];
  EXPECT_EQ(link.target, 3u);
  EXPECT_EQ(link.winner, "tcp");  // mpl cannot cross partitions
  ASSERT_TRUE(link.forward_via.has_value());
  EXPECT_EQ(*link.forward_via, 2u);  // packets land on partition 1's relay
  EXPECT_NE(rep.to_text().find("[forwarded via context 2]"),
            std::string::npos);
}

TEST(ExplainSelection, UnreliableMethodsReportedAsFallback) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"mpl", "udp"};
  Runtime rt(opts);
  telemetry::SelectionReport rep;
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    Startpoint sp = ctx.world_startpoint(0);
    rep = ctx.explain_selection(sp);
  });
  ASSERT_EQ(rep.links.size(), 1u);
  EXPECT_EQ(rep.links[0].winner, "mpl");
  bool saw_udp = false;
  for (const auto& c : rep.links[0].candidates) {
    if (c.method == "udp") {
      saw_udp = true;
      EXPECT_EQ(c.status, CandidateStatus::UnreliableFallback);
    }
  }
  EXPECT_TRUE(saw_udp);
}

// --------------------------------------------------------- causal tracing ---

TEST(TracerUnit, SpanAndTraceIdsAreNonzeroAndMonotonic) {
  Tracer tr;
  const auto s1 = tr.next_span();
  const auto s2 = tr.next_span();
  const auto t1 = tr.next_trace();
  const auto t2 = tr.next_trace();
  EXPECT_NE(s1, 0u);
  EXPECT_NE(t1, 0u);
  EXPECT_LT(s1, s2);
  EXPECT_LT(t1, t2);
}

TEST(TracerUnit, ChromeJsonReportsRingOverflowDrops) {
  Tracer tr(8);
  tr.enable();
  for (std::uint64_t i = 0; i < 20; ++i) {
    tr.record(Event{static_cast<telemetry::Time>(i), i + 1, 0, Phase::Custom,
                    0, 0, 0});
  }
  const std::string json = tr.chrome_json();
  ASSERT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"trace_recorded\":20"), std::string::npos);
  EXPECT_NE(json.find("\"trace_dropped\":12"), std::string::npos);
}

// --------------------------------------------------------- flight recorder ---

TEST(FlightRecorderUnit, RingRetainsNewestAndCountsDrops) {
  telemetry::FlightRecorder fr(10);
  EXPECT_TRUE(fr.enabled());  // always on by default
  EXPECT_EQ(fr.capacity(), 16u);  // rounded up to a power of two
  for (std::uint64_t i = 0; i < 25; ++i) {
    fr.record(Event{static_cast<telemetry::Time>(i), i + 1, 0, Phase::Custom,
                    0, 0, 0});
  }
  EXPECT_EQ(fr.recorded(), 25u);
  EXPECT_EQ(fr.dropped(), 9u);
  const auto evs = fr.events();
  ASSERT_EQ(evs.size(), 16u);
  EXPECT_EQ(evs.front().span, 10u);  // oldest retained
  EXPECT_EQ(evs.back().span, 25u);   // newest
  fr.clear();
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_TRUE(fr.events().empty());
}

TEST(FlightRecorderUnit, CapacityClampsToMinimumEight) {
  telemetry::FlightRecorder fr(1);
  EXPECT_EQ(fr.capacity(), 8u);
}

// ----------------------------------------------------------- trace stitch ---

TEST(StitchUnit, PhaseNamesRoundTrip) {
  using telemetry::phase_from_name;
  EXPECT_EQ(phase_from_name("send"), Phase::Send);
  EXPECT_EQ(phase_from_name("forward"), Phase::Forward);
  EXPECT_EQ(phase_from_name("retransmit"), Phase::Retransmit);
  EXPECT_EQ(phase_from_name("failover"), Phase::Failover);
  EXPECT_EQ(phase_from_name("no-such-phase"), Phase::Custom);
}

TEST(StitchUnit, RebuildsSpanTreeFromForwardEvents) {
  // Synthetic two-hop trace: root span 5 at context 0, Forward at context 2
  // opens child span 6, Dispatch at context 3 under span 6.
  std::vector<Event> evs;
  evs.push_back(Event{10, 5, 0, Phase::Send, 0, 64, 3, 0, 42});
  evs.push_back(Event{20, 6, 2, Phase::Forward, 0, 64, 3, 5, 42});
  evs.push_back(Event{30, 6, 3, Phase::Dispatch, 1, 64, 0, 0, 42});
  // A second, unrelated single-span trace.
  evs.push_back(Event{15, 9, 1, Phase::Send, 0, 8, 0, 0, 43});

  telemetry::TraceStitcher st;
  st.add_events(evs, {"mpl", "sink"});
  EXPECT_EQ(st.event_count(), 4u);
  const auto traces = st.traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0], 42u);
  EXPECT_EQ(traces[1], 43u);

  const auto spans = st.spans(42);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].id, 5u);        // root first
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].context, 0u);
  EXPECT_EQ(spans[1].id, 6u);
  EXPECT_EQ(spans[1].parent, 5u);    // parent link from the Forward event
  EXPECT_EQ(spans[1].context, 2u);
  EXPECT_EQ(spans[1].events, 2u);    // Forward + Dispatch

  const std::string json = st.chrome_json();
  ASSERT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"stitched\":true"), std::string::npos);
}

// ---------------------------------------------------------- metrics export ---

TEST(MetricsText, HistogramRowsCarryPercentileColumns) {
  auto rt = run_one_rsr(/*tracing=*/false);
  const std::string text = rt->telemetry().metrics().to_text();
  EXPECT_NE(text.find(" p50="), std::string::npos);
  EXPECT_NE(text.find(" p90="), std::string::npos);
  EXPECT_NE(text.find(" p99="), std::string::npos);
  EXPECT_NE(text.find(" p999="), std::string::npos);
}

TEST(MetricsText, EmptyHistogramsAreOmittedNotRendered) {
  telemetry::MetricsRegistry reg;
  const std::string text = reg.to_text();
  EXPECT_EQ(text.find("p50="), std::string::npos);
}

TEST(MetricsText, PrometheusExpositionHasTypesAndInfBucket) {
  auto rt = run_one_rsr(/*tracing=*/false);
  const std::string prom = rt->telemetry().metrics().to_prometheus();
  EXPECT_NE(prom.find("# TYPE nexus_sends_total counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE nexus_rsr_oneway_ns histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("nexus_sends_total{context=\"1\",method=\"mpl\"}"),
            std::string::npos);
}

TEST(MetricsExporterUnit, WritesOneWellFormedJsonLinePerSample) {
  const std::string jsonl = testing::TempDir() + "nexus_export_unit.jsonl";
  const std::string prom = testing::TempDir() + "nexus_export_unit.prom";
  std::remove(jsonl.c_str());
  {
    telemetry::Telemetry tele;
    tele.metrics().context(0).failovers += 3;
    telemetry::MetricsExporter::Options eopts;
    eopts.jsonl_path = jsonl;
    eopts.prom_path = prom;
    eopts.interval = 1000;
    telemetry::MetricsExporter ex(&tele, eopts);
    ASSERT_TRUE(ex.active());
    ex.add_provider("answer", [] { return std::string("{\"n\":42}"); });
    ex.maybe_sample(10);  // first call is always due
    ex.maybe_sample(500);  // inside the interval: a no-op
    EXPECT_EQ(ex.samples_taken(), 1u);
    ex.maybe_sample(2000);  // past the deadline: fires again
    EXPECT_EQ(ex.samples_taken(), 2u);
  }
  std::ifstream in(jsonl);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(json_well_formed(line)) << line;
    EXPECT_NE(line.find("\"trace_dropped\":"), std::string::npos);
    EXPECT_NE(line.find("\"answer\":{\"n\":42}"), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::ifstream pin(prom);
  ASSERT_TRUE(pin.good());
  std::stringstream ps;
  ps << pin.rdbuf();
  EXPECT_NE(ps.str().find("nexus_failovers_total{context=\"0\"} 3"),
            std::string::npos);
  std::remove(jsonl.c_str());
  std::remove(prom.c_str());
}

TEST(MetricsExporterUnit, RuntimeExportsHealthAndCostModelProviders) {
  const std::string jsonl = testing::TempDir() + "nexus_export_rt.jsonl";
  std::remove(jsonl.c_str());
  {
    RuntimeOptions opts;
    opts.topology = simnet::Topology::single_partition(2);
    opts.modules = {"local", "mpl", "tcp"};
    opts.export_jsonl = jsonl;
    Runtime rt(opts);
    rt.run([&](Context& ctx) {
      std::uint64_t done = 0;
      ctx.register_handler("ev",
                           [&](Context&, Endpoint&, util::UnpackBuffer&) {
                             ++done;
                           });
      if (ctx.id() == 1) {
        Startpoint sp = ctx.world_startpoint(0);
        ctx.rsr(sp, "ev");
      } else {
        ctx.wait_count(done, 1);
      }
    });
    // The runtime takes a final sample at shutdown, so even a short run
    // leaves at least one line.
    ASSERT_GE(rt.exporter()->samples_taken(), 1u);
  }
  std::ifstream in(jsonl);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(json_well_formed(line)) << line;
  EXPECT_NE(line.find("\"health\":"), std::string::npos);
  EXPECT_NE(line.find("\"cost_model\":"), std::string::npos);
  EXPECT_NE(line.find("\"metrics\":"), std::string::npos);
  std::remove(jsonl.c_str());
}

// ------------------------------------------------- environment overrides ---

TEST(TelemetryEnv, NexusTraceTurnsTracingOnAndOff) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(1);
  opts.modules = {"local"};

  ::setenv("NEXUS_TRACE", "on", 1);
  {
    Runtime rt(opts);
    EXPECT_TRUE(rt.telemetry().tracer().enabled());
  }
  ::setenv("NEXUS_TRACE", "0", 1);
  {
    RuntimeOptions traced = opts;
    traced.tracing = true;  // env override wins over the option
    Runtime rt(traced);
    EXPECT_FALSE(rt.telemetry().tracer().enabled());
  }
  ::setenv("NEXUS_TRACE", "banana", 1);
  {
    Runtime rt(opts);  // unrecognized: warn, keep the option (off)
    EXPECT_FALSE(rt.telemetry().tracer().enabled());
  }
  ::unsetenv("NEXUS_TRACE");
}

TEST(TelemetryEnv, NexusFlightDirFillsUnsetOption) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(1);
  opts.modules = {"local"};

  ::setenv("NEXUS_FLIGHT_DIR", "/tmp/nexus-env-flight", 1);
  {
    Runtime rt(opts);
    EXPECT_EQ(rt.telemetry().flight_dir(), "/tmp/nexus-env-flight");
  }
  {
    RuntimeOptions explicit_dir = opts;
    explicit_dir.flight_dir = "/tmp/nexus-opt-flight";
    Runtime rt(explicit_dir);  // an explicit option beats the environment
    EXPECT_EQ(rt.telemetry().flight_dir(), "/tmp/nexus-opt-flight");
  }
  ::unsetenv("NEXUS_FLIGHT_DIR");
}

TEST(TelemetryEnv, FlightRecordersAreOnByDefaultAndSizable) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl"};
  opts.flight_capacity = 64;
  Runtime rt(opts);
  ASSERT_EQ(rt.telemetry().flight_count(), 2u);
  for (std::uint32_t c = 0; c < 2; ++c) {
    auto* fr = rt.telemetry().flight(c);
    ASSERT_NE(fr, nullptr);
    EXPECT_TRUE(fr->enabled());
    EXPECT_EQ(fr->capacity(), 64u);
  }
  RuntimeOptions off = opts;
  off.flight = false;
  Runtime rt2(off);
  auto* fr = rt2.telemetry().flight(0);
  ASSERT_NE(fr, nullptr);
  EXPECT_FALSE(fr->enabled());
}

}  // namespace
