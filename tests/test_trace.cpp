// Trace recorder integration: event sequences recorded across a run.
#include <gtest/gtest.h>

#include "nexus/runtime.hpp"
#include "simnet/trace.hpp"

namespace {

using namespace nexus;

TEST(Trace, DisabledByDefaultRecordsNothing) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("x", [&](Context&, Endpoint&, util::UnpackBuffer&) {
      ++done;
    });
    if (ctx.id() == 1) {
      Startpoint sp = ctx.world_startpoint(0);
      ctx.rsr(sp, "x");
    } else {
      ctx.wait_count(done, 1);
    }
  });
  EXPECT_TRUE(rt.trace().events().empty());
}

TEST(Trace, SendAndDispatchRecordedInOrder) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  Runtime rt(opts);
  rt.trace().enable();
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("ev", [&](Context&, Endpoint&, util::UnpackBuffer&) {
      ++done;
    });
    if (ctx.id() == 1) {
      Startpoint sp = ctx.world_startpoint(0);
      for (int i = 0; i < 3; ++i) ctx.rsr(sp, "ev");
    } else {
      ctx.wait_count(done, 3);
    }
  });
  EXPECT_EQ(rt.trace().count(simnet::TraceKind::Send, "mpl"), 3u);
  EXPECT_EQ(rt.trace().count(simnet::TraceKind::Dispatch), 3u);
  // Every dispatch happens after its send (virtual timestamps monotone per
  // message; here simply: first send precedes first dispatch).
  Time first_send = -1, first_dispatch = -1;
  for (const auto& ev : rt.trace().events()) {
    if (ev.kind == simnet::TraceKind::Send && first_send < 0) {
      first_send = ev.when;
    }
    if (ev.kind == simnet::TraceKind::Dispatch && first_dispatch < 0) {
      first_dispatch = ev.when;
    }
  }
  EXPECT_GE(first_dispatch, first_send);
}

TEST(Trace, ForwardEventsCarryTheRelayMethod) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(2, 2);
  opts.forwarders[1] = 2;
  Runtime rt(opts);
  rt.trace().enable();
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(3);
        ctx.rsr(sp, "sink");
      },
      [](Context&) {},
      [&](Context& ctx) {  // forwarder services until the relay happened
        ctx.wait([&] {
          return ctx.method_counters("mpl").sends > 0;
        });
      },
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("sink",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++done;
                             });
        ctx.wait_count(done, 1);
      }});
  ASSERT_GE(rt.trace().count(simnet::TraceKind::Forward), 1u);
  for (const auto& ev : rt.trace().events()) {
    if (ev.kind == simnet::TraceKind::Forward) {
      EXPECT_EQ(ev.method, "mpl");  // relayed into the partition over mpl
      EXPECT_EQ(ev.context, 2u);    // by the forwarder
    }
  }
}

TEST(Trace, ClearResetsTheLog) {
  simnet::TraceRecorder tr;
  tr.enable();
  tr.record({1, 0, simnet::TraceKind::Custom, "m", 0, "note"});
  EXPECT_EQ(tr.events().size(), 1u);
  tr.clear();
  EXPECT_TRUE(tr.events().empty());
}

TEST(Describe, ReportsPollScheduleAndForwarders) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(2, 2);
  opts.forwarders[1] = 2;
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) ctx.set_skip_poll("tcp", 42);
  });
  const std::string report = rt.describe();
  EXPECT_NE(report.find("forwarder for partition 1: context 2"),
            std::string::npos);
  EXPECT_NE(report.find("[skip 42]"), std::string::npos);
  EXPECT_NE(report.find("[not polled]"), std::string::npos);  // ctx 3's tcp
}

}  // namespace
