// Distributed causal tracing: one trace id per RSR, child spans on
// forwarding hops, span reuse across retransmits and failover retries, the
// trace stitcher's span-tree reconstruction, and flight-recorder dumps
// carrying the failing RSR's trace id.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "nexus/telemetry/stitch.hpp"

namespace {

using namespace nexus;
using nexus::testing::chaos_opts;
using nexus::testing::events_of_trace;
using nexus::testing::opts_with;
using nexus::testing::trace_ids;
using simnet::kMs;
using simnet::kSec;
using simnet::kUs;
using telemetry::Event;
using telemetry::Phase;

/// One traced RSR from context 0 to context 3 across the forwarding relay
/// at context 2 (partition 1's forwarder).  Three contexts touch the
/// packet: the startpoint, the relay, and the destination.
std::unique_ptr<Runtime> run_forwarded_rsr() {
  RuntimeOptions opts = opts_with({"local", "mpl", "tcp"},
                                  simnet::Topology::two_partitions(2, 2));
  opts.forwarders[1] = 2;
  opts.tracing = true;
  auto rt = std::make_unique<Runtime>(opts);
  std::uint64_t done = 0;
  rt->run({[&](Context& ctx) {
             Startpoint sp = ctx.world_startpoint(3);
             ctx.rsr(sp, "sink");
           },
           [&](Context&) {},
           [&](Context& ctx) {
             // The relay just polls until the packet has transited.
             for (int i = 0; i < 20000 && done == 0; ++i) {
               ctx.progress();
               if (ctx.now() > 10 * kSec) break;
             }
           },
           [&](Context& ctx) {
             nexus::testing::register_counter(ctx, "sink", done);
             ctx.wait_count(done, 1);
           }});
  return rt;
}

TEST(TracePropagation, ForwardedRsrHasOneTraceWithParentedSpans) {
  auto rt = run_forwarded_rsr();

  const auto ids = trace_ids(*rt);
  ASSERT_EQ(ids.size(), 1u);  // exactly one RSR, exactly one trace
  const std::uint64_t trace = ids[0];
  const auto evs = events_of_trace(*rt, trace);

  const Event* send = nullptr;
  const Event* forward = nullptr;
  const Event* dispatch = nullptr;
  int dispatches = 0;
  for (const Event& ev : evs) {
    if (ev.phase == Phase::Send) send = &ev;
    if (ev.phase == Phase::Forward) forward = &ev;
    if (ev.phase == Phase::Dispatch) {
      dispatch = &ev;
      ++dispatches;
    }
  }
  ASSERT_NE(send, nullptr);
  ASSERT_NE(forward, nullptr);
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(dispatches, 1);  // no span duplication

  // The root span opens at the startpoint; the relay opens a child span
  // parented on it; the dispatch happens under the relay's span.
  EXPECT_EQ(send->context, 0u);
  EXPECT_EQ(send->parent, 0u);
  EXPECT_NE(send->span, 0u);
  EXPECT_EQ(forward->context, 2u);
  EXPECT_EQ(forward->parent, send->span);
  EXPECT_NE(forward->span, send->span);
  EXPECT_EQ(dispatch->context, 3u);
  EXPECT_EQ(dispatch->span, forward->span);

  // Events from at least three distinct contexts carry the trace.
  std::vector<std::uint32_t> ctxs;
  for (const Event& ev : evs) {
    if (std::find(ctxs.begin(), ctxs.end(), ev.context) == ctxs.end()) {
      ctxs.push_back(ev.context);
    }
  }
  EXPECT_GE(ctxs.size(), 3u);

  // The stitcher reconstructs the same two-span tree, root first.
  telemetry::TraceStitcher st;
  st.add_tracer(rt->telemetry().tracer());
  const auto traces = st.traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0], trace);
  const auto spans = st.spans(trace);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].id, send->span);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].context, 0u);
  EXPECT_EQ(spans[1].id, forward->span);
  EXPECT_EQ(spans[1].parent, send->span);
  EXPECT_EQ(spans[1].context, 2u);
}

TEST(TracePropagation, StitchedChromeTraceLinksThreeContexts) {
  auto rt = run_forwarded_rsr();
  const std::string path = ::testing::TempDir() + "nexus_stitched.json";
  rt->write_stitched_trace(path);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(path.c_str());

  EXPECT_NE(json.find("\"stitched\":true"), std::string::npos);
  // Flow arrows follow the RSR across the relay hop.
  EXPECT_NE(json.find("\"cat\":\"rsrflow\""), std::string::npos);
  // All three contexts the packet touched appear as process rows.
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  // Parent/child linkage: the relay's Forward closes the root span (async
  // end with the parent id) and opens the child span on the same row.
  const auto ids = trace_ids(*rt);
  ASSERT_EQ(ids.size(), 1u);
  const auto spans =
      [&] {
        telemetry::TraceStitcher st;
        st.add_tracer(rt->telemetry().tracer());
        return st.spans(ids[0]);
      }();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(json.find("\"id\":" + std::to_string(spans[0].id)),
            std::string::npos);
  EXPECT_NE(json.find("\"id\":" + std::to_string(spans[1].id)),
            std::string::npos);
}

TEST(TracePropagation, RetransmitReusesSpanWithoutDuplicateDispatch) {
  // Drop every udp datagram for the first 5 ms: the initial transmission
  // is lost and the rel wrapper's RTO repairs it.  The retransmission is
  // the SAME span and trace, and the receiver dispatches exactly once.
  RuntimeOptions opts = chaos_opts({"local", "rel+udp"},
                                   simnet::Topology::single_partition(2));
  opts.tracing = true;
  opts.faults.drop("udp", 1.0, /*from=*/0, /*until=*/5 * kMs);
  opts.db.set("rel.rto_initial_us", "2000");
  opts.db.set("rel.rto_min_us", "1000");
  Runtime rt(opts);
  std::uint64_t done = 0;
  rt.run({[&](Context& ctx) {
            Startpoint sp = ctx.world_startpoint(1);
            ctx.rsr(sp, "sink");
            ctx.compute_with_polling(20 * kMs, 100 * kUs);
          },
          [&](Context& ctx) {
            nexus::testing::register_counter(ctx, "sink", done);
            ctx.wait_count(done, 1);
          }});

  const auto ids = trace_ids(rt);
  ASSERT_EQ(ids.size(), 1u);
  const auto evs = events_of_trace(rt, ids[0]);
  const Event* send = nullptr;
  const Event* retransmit = nullptr;
  int dispatches = 0;
  for (const Event& ev : evs) {
    if (ev.phase == Phase::Send) send = &ev;
    if (ev.phase == Phase::Retransmit && retransmit == nullptr) {
      retransmit = &ev;
    }
    if (ev.phase == Phase::Dispatch) ++dispatches;
  }
  ASSERT_NE(send, nullptr);
  ASSERT_NE(retransmit, nullptr);  // the drop window forced at least one
  EXPECT_EQ(retransmit->span, send->span);  // same span: no new segment
  EXPECT_EQ(retransmit->trace, send->trace);
  EXPECT_EQ(dispatches, 1);  // exactly-once survives the retry
}

TEST(TracePropagation, FailoverRetryStaysOnOneTrace) {
  // aal5 is blackholed outright: the first attempt dies, the health
  // tracker quarantines it, and the failover loop re-sends on tcp -- all
  // under the same trace id.
  RuntimeOptions opts = chaos_opts({"local", "aal5", "tcp"},
                                   simnet::Topology::single_partition(2));
  opts.tracing = true;
  opts.faults.blackhole("aal5", /*from=*/0);
  Runtime rt(opts);
  std::uint64_t done = 0;
  rt.run({[&](Context& ctx) {
            Startpoint sp = ctx.world_startpoint(1);
            ctx.rsr(sp, "sink");
            ctx.compute_with_polling(5 * kMs, 100 * kUs);
          },
          [&](Context& ctx) {
            nexus::testing::register_counter(ctx, "sink", done);
            ctx.wait_count(done, 1);
          }});

  const auto ids = trace_ids(rt);
  ASSERT_EQ(ids.size(), 1u);
  const auto evs = events_of_trace(rt, ids[0]);
  bool saw_failover = false;
  bool saw_drop = false;
  int dispatches = 0;
  const Event* root = nullptr;
  for (const Event& ev : evs) {
    if (ev.phase == Phase::Send && root == nullptr) root = &ev;
    if (ev.phase == Phase::Failover) saw_failover = true;
    if (ev.phase == Phase::Drop) saw_drop = true;
    if (ev.phase == Phase::Dispatch) ++dispatches;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(saw_drop);      // the blackholed attempt is on the trace
  EXPECT_TRUE(saw_failover);  // so is the quarantine decision
  EXPECT_EQ(dispatches, 1);   // and the tcp retry delivered exactly once
}

TEST(FlightDump, RelDeadLatchDumpCarriesTheFailingTraceId) {
  // Every udp datagram silently vanishes forever; with max_retries=2 the
  // rel wrapper latches the peer Dead and triggers a flight dump.  Tracing
  // stays OFF: the flight recorder alone must capture the trace.
  const std::string dir =
      ::testing::TempDir() + "nexus_flight_latch_" +
      std::to_string(nexus::testing::test_seed());
  std::filesystem::create_directories(dir);
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    std::filesystem::remove(e.path());
  }

  RuntimeOptions opts = chaos_opts({"local", "rel+udp"},
                                   simnet::Topology::single_partition(2));
  opts.faults.drop("udp", 1.0, /*from=*/0);  // undetectable, permanent
  opts.db.set("rel.rto_initial_us", "1000");
  opts.db.set("rel.rto_min_us", "500");
  opts.db.set("rel.max_retries", "2");
  opts.flight_dir = dir;
  Runtime rt(opts);
  rt.run({[&](Context& ctx) {
            Startpoint sp = ctx.world_startpoint(1);
            ctx.rsr(sp, "sink");  // accepted by the wrapper, never delivered
            ctx.compute_with_polling(50 * kMs, 100 * kUs);
          },
          [&](Context& ctx) {
            std::uint64_t done = 0;
            nexus::testing::register_counter(ctx, "sink", done);
            ctx.compute_with_polling(50 * kMs, 100 * kUs);
          }});

  std::string dump_path;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().filename().string().find("rel-dead-latch") !=
        std::string::npos) {
      dump_path = e.path().string();
    }
  }
  ASSERT_FALSE(dump_path.empty()) << "no rel-dead-latch dump in " << dir;

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"flight\":true"), std::string::npos);
  EXPECT_NE(line.find("\"reason\":\"rel-dead-latch\""), std::string::npos);

  // The failing RSR's send and its retransmissions share one nonzero
  // trace id, and the dump contains them.
  std::uint64_t send_trace = 0;
  std::uint64_t retransmit_trace = 0;
  auto field_u64 = [](const std::string& s, const char* key) -> std::uint64_t {
    const auto pos = s.find(key);
    if (pos == std::string::npos) return 0;
    return std::strtoull(s.c_str() + pos + std::string(key).size(), nullptr,
                         10);
  };
  while (std::getline(in, line)) {
    if (line.find("\"phase\":\"send\"") != std::string::npos &&
        send_trace == 0) {
      send_trace = field_u64(line, "\"trace\":");
    }
    if (line.find("\"phase\":\"retransmit\"") != std::string::npos) {
      retransmit_trace = field_u64(line, "\"trace\":");
    }
  }
  EXPECT_NE(send_trace, 0u);
  EXPECT_EQ(retransmit_trace, send_trace);

  // The stitcher ingests the dump directly.
  telemetry::TraceStitcher st;
  ASSERT_TRUE(st.add_flight_dump(dump_path));
  EXPECT_GT(st.event_count(), 0u);
  const auto traces = st.traces();
  ASSERT_FALSE(traces.empty());
  EXPECT_NE(std::find(traces.begin(), traces.end(), send_trace),
            traces.end());
}

TEST(FlightDump, QuarantineTriggersADumpOnce) {
  const std::string dir =
      ::testing::TempDir() + "nexus_flight_quarantine_" +
      std::to_string(nexus::testing::test_seed());
  std::filesystem::create_directories(dir);
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    std::filesystem::remove(e.path());
  }

  RuntimeOptions opts = chaos_opts({"local", "aal5", "tcp"},
                                   simnet::Topology::single_partition(2));
  opts.faults.blackhole("aal5", /*from=*/0);
  opts.flight_dir = dir;
  Runtime rt(opts);
  std::uint64_t done = 0;
  rt.run({[&](Context& ctx) {
            Startpoint sp = ctx.world_startpoint(1);
            ctx.rsr(sp, "sink");
            ctx.rsr(sp, "sink");  // second quarantine path must not re-dump
            ctx.compute_with_polling(5 * kMs, 100 * kUs);
          },
          [&](Context& ctx) {
            nexus::testing::register_counter(ctx, "sink", done);
            ctx.wait_count(done, 2);
          }});

  int dumps = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().filename().string().find("quarantine") !=
        std::string::npos) {
      ++dumps;
    }
  }
  EXPECT_EQ(dumps, 1);  // once per reason per runtime
  EXPECT_EQ(done, 2u);
}

}  // namespace
