// Zero-copy payload isolation: multicast links and forwarding hops alias
// one SharedBytes buffer, so a handler that "mutates" its received bytes
// (necessarily via a copy -- the shared buffer is immutable) must never
// affect what other recipients or downstream hops observe.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "nexus/runtime.hpp"
#include "proto/sim_modules.hpp"

namespace {

using namespace nexus;

RuntimeOptions sim_opts(simnet::Topology topo,
                        std::vector<std::string> modules = {"local", "mpl",
                                                            "tcp"}) {
  RuntimeOptions opts;
  opts.fabric = RuntimeOptions::Fabric::Simulated;
  opts.topology = std::move(topo);
  opts.modules = std::move(modules);
  return opts;
}

util::Bytes test_payload() {
  util::Bytes b(64);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<util::Byte>(i * 7 + 1);
  }
  return b;
}

TEST(ZeroCopy, PacketCopiesAliasThePayload) {
  Packet pkt;
  pkt.payload = util::SharedBytes::copy_of(test_payload());
  Packet copy = pkt;
  EXPECT_TRUE(copy.payload.aliases(pkt.payload));
  EXPECT_EQ(copy.payload.data(), pkt.payload.data());
}

TEST(ZeroCopy, MulticastRecipientMutationIsIsolated) {
  // One multi-link RSR: every link aliases the sender's single buffer.
  // Context 1's handler scribbles over its (copied-out) bytes; contexts 2
  // and 3 must still observe the pristine payload.
  Runtime rt(sim_opts(simnet::Topology::single_partition(4)));
  const util::Bytes expected = test_payload();
  std::array<bool, 4> intact{true, true, true, true};

  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      Startpoint group;
      for (ContextId r = 1; r <= 3; ++r) {
        Startpoint one = ctx.world_startpoint(r);
        group.links().push_back(one.link(0));
      }
      util::PackBuffer pb;
      pb.put_bytes(expected);
      // release() moves the packed storage into the shared buffer; every
      // link's packet aliases it.
      ctx.rsr(group, "blob", pb.release());
      return;
    }
    std::uint64_t done = 0;
    ctx.register_handler("blob", [&](Context& c, Endpoint&,
                                     util::UnpackBuffer& ub) {
      util::Bytes mine = ub.get_bytes();
      intact[c.id()] = mine == expected;
      if (c.id() == 1) {
        // The only mutable access is a copy; trashing it must be local.
        for (auto& byte : mine) byte = 0xff;
      }
      ++done;
    });
    ctx.wait_count(done, 1);
  });

  EXPECT_TRUE(intact[1]);
  EXPECT_TRUE(intact[2]);
  EXPECT_TRUE(intact[3]);
}

TEST(ZeroCopy, ForwarderInFlightCopyUnaffectedByLocalHandler) {
  // Partition 0 = {0} (driver), partition 1 = {1, 2} with context 1 as the
  // forwarder.  A two-link RSR delivers the same buffer at context 1
  // (locally) and through context 1's forwarding path to context 2.  The
  // local handler at 1 corrupts its copy; the forwarded packet, which
  // aliases the same buffer while queued, must arrive at 2 pristine.
  RuntimeOptions opts = sim_opts(simnet::Topology::two_partitions(1, 2));
  opts.forwarders[1] = 1;
  Runtime rt(opts);
  const util::Bytes expected = test_payload();
  bool fwd_intact = false;
  bool local_intact = false;

  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      Startpoint both;
      Startpoint to1 = ctx.world_startpoint(1);
      Startpoint to2 = ctx.world_startpoint(2);
      both.links().push_back(to1.link(0));
      both.links().push_back(to2.link(0));
      util::PackBuffer pb;
      pb.put_bytes(expected);
      ctx.rsr(both, "blob", pb.release());
      return;
    }
    std::uint64_t done = 0;
    ctx.register_handler("blob", [&](Context& c, Endpoint&,
                                     util::UnpackBuffer& ub) {
      util::Bytes mine = ub.get_bytes();
      if (c.id() == 1) {
        local_intact = mine == expected;
        for (auto& byte : mine) byte = 0x00;
      } else {
        fwd_intact = mine == expected;
      }
      ++done;
    });
    ctx.wait_count(done, 1);
  });

  EXPECT_TRUE(local_intact);
  EXPECT_TRUE(fwd_intact);
}

TEST(ZeroCopy, RealtimeMulticastMembersSeePristinePayload) {
  // Same isolation contract on the thread fabric: the rt mcast module's
  // per-member packets alias one buffer across real concurrent queues.
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(4),
                                 {"local", "mpl", "tcp", "mcast"});
  opts.fabric = RuntimeOptions::Fabric::Realtime;
  Runtime rt(opts);
  const util::Bytes expected = test_payload();
  std::atomic<int> pristine{0};
  std::atomic<int> joined{0};

  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      while (joined.load() < 3) std::this_thread::yield();
      Startpoint group = proto::multicast_startpoint(ctx, 5);
      util::PackBuffer pb;
      pb.put_bytes(expected);
      ctx.rsr(group, "blob", pb.release());
      return;
    }
    std::uint64_t done = 0;
    Endpoint& ep = ctx.create_endpoint();
    ctx.register_handler("blob", [&](Context&, Endpoint&,
                                     util::UnpackBuffer& ub) {
      util::Bytes mine = ub.get_bytes();
      if (mine == expected) pristine.fetch_add(1);
      for (auto& byte : mine) byte = 0xee;  // local copy only
      ++done;
    });
    proto::multicast_join(ctx, 5, ep);
    joined.fetch_add(1);
    ctx.wait_count(done, 1);
  });

  EXPECT_EQ(pristine.load(), 3);
}

}  // namespace
