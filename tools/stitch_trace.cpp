// stitch_trace: merge flight-recorder JSONL dumps into one Chrome trace.
//
// Usage: stitch_trace <dump.jsonl>... [-o out.json]
//
// Each input is a flight dump written by the runtime (telemetry.cpp format,
// one JSON object per line).  The merged output is a causally-linked Chrome
// about://tracing JSON: every context becomes a process row, every span an
// async begin/end pair, and flow arrows follow each trace id across hops,
// retries, and retransmits.  Open the result in chrome://tracing or
// https://ui.perfetto.dev.  The CI chaos job runs this over whatever the
// failing run dumped, so a red seed ships with its own post-mortem trace.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nexus/telemetry/stitch.hpp"

int main(int argc, char** argv) {
  std::string out_path = "stitched-trace.json";
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "stitch_trace: -o requires a path\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: stitch_trace <dump.jsonl>... [-o out.json]\n");
      return 0;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "stitch_trace: no input dumps given\n");
    return 2;
  }

  nexus::telemetry::TraceStitcher st;
  int loaded = 0;
  for (const std::string& path : inputs) {
    if (st.add_flight_dump(path)) {
      ++loaded;
    } else {
      std::fprintf(stderr, "stitch_trace: cannot read %s (skipped)\n",
                   path.c_str());
    }
  }
  if (loaded == 0) {
    std::fprintf(stderr, "stitch_trace: no readable inputs\n");
    return 1;
  }
  if (!st.write(out_path)) {
    std::fprintf(stderr, "stitch_trace: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("stitched %d dump(s), %zu events, %zu trace(s) -> %s\n", loaded,
              st.event_count(), st.traces().size(), out_path.c_str());
  return 0;
}
